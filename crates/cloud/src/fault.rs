//! Seeded deterministic fault injection for the exchange pipeline.
//!
//! Real blob-store exchanges fail in mundane ways the paper's testbed
//! never shows: requests drop, transfers stall, links degrade, bytes
//! arrive flipped. A [`FaultPlan`] decides — purely as a hash of
//! `(seed, fault kind, algorithm, file, block, attempt)` — whether a
//! given block-level operation fails, stalls, slows down or corrupts.
//! The same plan always injects the same faults, so every chaos test is
//! reproducible, and retried attempts get fresh draws (an operation that
//! failed at attempt 0 may succeed at attempt 1, like a real transient).
//!
//! All rates are probabilities in `[0, 1]`; a rate of zero short-circuits
//! without hashing, so a [`FaultPlan::none`] plan adds no work and no
//! behaviour change to the fault-free pipeline.

use dnacomp_algos::Algorithm;
use dnacomp_codec::checksum::{unit_interval, Fnv1a};

/// Deterministic per-block fault schedule for one simulated environment.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed all fault decisions derive from.
    pub seed: u64,
    /// Probability an upload block attempt fails outright.
    pub upload_fail_rate: f64,
    /// Probability a download block attempt fails outright.
    pub download_fail_rate: f64,
    /// Probability a downloaded block arrives corrupted (detected by the
    /// per-block checksum, then re-fetched).
    pub corrupt_rate: f64,
    /// Probability an attempt stalls for [`stall_ms`](Self::stall_ms)
    /// before completing.
    pub stall_rate: f64,
    /// Extra latency a stalled attempt pays, ms.
    pub stall_ms: f64,
    /// Probability an attempt runs over a degraded link.
    pub degrade_rate: f64,
    /// Wire-time multiplier (> 1) for degraded attempts.
    pub degrade_factor: f64,
    /// Probability a disk write is torn: the process "dies" having
    /// persisted only a prefix of the bytes it asked the kernel for.
    /// Drives the sequence store's crash-recovery tests; zero everywhere
    /// else.
    pub torn_write_rate: f64,
    /// Probability a job **panics** mid-execution (a poison input
    /// tripping a codec bug). Keyed on the *file only* — no block,
    /// attempt or worker dimension — so a poisonous job panics every
    /// time it is run, on any worker: exactly the repeat-offender shape
    /// the supervision layer's quarantine fingerprinting must catch.
    pub panic_rate: f64,
    /// Probability a job **kills its worker thread outright** (panic
    /// outside the containment boundary — the stand-in for stack
    /// exhaustion or a dependency `abort`). Also keyed on the file only,
    /// so the same job reliably crashes whichever worker picks it up
    /// and the supervisor's restart budget + strike accounting is
    /// deterministic.
    pub worker_kill_rate: f64,
    /// Probability a network I/O operation kills its connection outright
    /// (RST mid-stream). Keyed on `(connection, op)`, so a given
    /// connection's lifetime is deterministic per plan. Drives the TCP
    /// front-end's chaos soak; zero everywhere else.
    pub conn_drop_rate: f64,
    /// Probability a network write is torn: only a prefix of the bytes
    /// reaches the wire and the connection dies — the peer sees a
    /// truncated frame.
    pub partial_write_rate: f64,
    /// Probability a network I/O operation is delayed by
    /// [`net_delay_ms`](Self::net_delay_ms) before proceeding (a slow or
    /// congested link; the server's deadlines must absorb it).
    pub net_delay_rate: f64,
    /// Extra latency a delayed network operation pays, wall-clock ms.
    pub net_delay_ms: f64,
    /// Probability a network read delivers one flipped bit somewhere in
    /// the buffer (detected by the frame checksum, never silently
    /// accepted).
    pub net_corrupt_rate: f64,
    /// Probability a whole shard process "dies" for a soak window.
    /// Keyed on `(shard id, window index)`, so a cluster chaos test can
    /// ask deterministically which shard to kill in which window.
    /// Drives the router's shard-kill soak; zero everywhere else.
    pub shard_kill_rate: f64,
}

/// Which pipeline operation a fault decision is for. Folded into the
/// hash so upload/download/corruption/stall/degrade draws are
/// independent streams.
#[derive(Clone, Copy, Debug)]
enum FaultKind {
    UploadFail = 1,
    DownloadFail = 2,
    Corrupt = 3,
    Stall = 4,
    Degrade = 5,
    TornWrite = 6,
    TornWriteLen = 7,
    JobPanic = 8,
    WorkerKill = 9,
    ConnDrop = 10,
    PartialWrite = 11,
    PartialWriteLen = 12,
    NetDelay = 13,
    NetCorrupt = 14,
    NetCorruptPos = 15,
    ShardKill = 16,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The fault-free plan: every rate zero. Exchanges behave exactly as
    /// the un-instrumented pipeline.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            upload_fail_rate: 0.0,
            download_fail_rate: 0.0,
            corrupt_rate: 0.0,
            stall_rate: 0.0,
            stall_ms: 0.0,
            degrade_rate: 0.0,
            degrade_factor: 1.0,
            torn_write_rate: 0.0,
            panic_rate: 0.0,
            worker_kill_rate: 0.0,
            conn_drop_rate: 0.0,
            partial_write_rate: 0.0,
            net_delay_rate: 0.0,
            net_delay_ms: 0.0,
            net_corrupt_rate: 0.0,
            shard_kill_rate: 0.0,
        }
    }

    /// A network-fault-only plan for the TCP front-end's chaos soak:
    /// each wire operation drops its connection at `rate / 4`, tears a
    /// write at `rate / 2`, is delayed at `rate`, and flips a read bit
    /// at `rate / 2`. Disk, transfer and panic faults stay zero.
    pub fn network(seed: u64, rate: f64) -> Self {
        FaultPlan {
            seed,
            conn_drop_rate: rate / 4.0,
            partial_write_rate: rate / 2.0,
            net_delay_rate: rate,
            net_delay_ms: 2.0,
            net_corrupt_rate: rate / 2.0,
            ..FaultPlan::none()
        }
    }

    /// A disk-fault-only plan: network transfers are clean, but each
    /// disk write tears with probability `torn_rate`. The store's chaos
    /// tests run their workload under this plan.
    pub fn disk(seed: u64, torn_rate: f64) -> Self {
        FaultPlan {
            seed,
            torn_write_rate: torn_rate,
            ..FaultPlan::none()
        }
    }

    /// A panic-injection-only plan: transfers and disks are clean, but
    /// each distinct job file panics mid-execution with probability
    /// `panic_rate` (deterministically — a poisonous file is poisonous
    /// forever). Drives the server's supervision soak tests.
    pub fn panics(seed: u64, panic_rate: f64) -> Self {
        FaultPlan {
            seed,
            panic_rate,
            ..FaultPlan::none()
        }
    }

    /// A uniform chaos plan: transfers fail at `fail_rate`, and the
    /// secondary faults (corruption, stalls, degradation) each occur at
    /// half that rate. Convenient for rate sweeps.
    pub fn uniform(seed: u64, fail_rate: f64) -> Self {
        FaultPlan {
            seed,
            upload_fail_rate: fail_rate,
            download_fail_rate: fail_rate,
            corrupt_rate: fail_rate / 2.0,
            stall_rate: fail_rate / 2.0,
            stall_ms: 40.0,
            degrade_rate: fail_rate / 2.0,
            degrade_factor: 3.0,
            ..FaultPlan::none()
        }
    }

    /// `true` when every rate is zero (the pipeline can skip bookkeeping).
    pub fn is_none(&self) -> bool {
        self.upload_fail_rate == 0.0
            && self.download_fail_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.stall_rate == 0.0
            && self.degrade_rate == 0.0
            && self.torn_write_rate == 0.0
            && self.panic_rate == 0.0
            && self.worker_kill_rate == 0.0
            && self.shard_kill_rate == 0.0
            && !self.has_net_faults()
    }

    /// `true` when any network-layer rate is set (the TCP front-end
    /// wraps accepted streams in a fault injector only then).
    pub fn has_net_faults(&self) -> bool {
        self.conn_drop_rate > 0.0
            || self.partial_write_rate > 0.0
            || self.net_delay_rate > 0.0
            || self.net_corrupt_rate > 0.0
    }

    /// Deterministic unit-interval draw for one (kind, operation) tuple.
    fn unit(&self, kind: FaultKind, alg: Algorithm, file: &str, block: usize, attempt: u32) -> f64 {
        let mut h = Fnv1a::with_seed(self.seed);
        h.update(&[kind as u8, alg.tag()]);
        h.update(file.as_bytes());
        h.update(&(block as u64).to_le_bytes());
        h.update(&attempt.to_le_bytes());
        unit_interval(h.digest())
    }

    fn hit(
        &self,
        rate: f64,
        kind: FaultKind,
        alg: Algorithm,
        file: &str,
        block: usize,
        attempt: u32,
    ) -> bool {
        rate > 0.0 && self.unit(kind, alg, file, block, attempt) < rate
    }

    /// Does this upload block attempt fail?
    pub fn upload_fails(&self, alg: Algorithm, file: &str, block: usize, attempt: u32) -> bool {
        self.hit(
            self.upload_fail_rate,
            FaultKind::UploadFail,
            alg,
            file,
            block,
            attempt,
        )
    }

    /// Does this download block attempt fail?
    pub fn download_fails(&self, alg: Algorithm, file: &str, block: usize, attempt: u32) -> bool {
        self.hit(
            self.download_fail_rate,
            FaultKind::DownloadFail,
            alg,
            file,
            block,
            attempt,
        )
    }

    /// Does this downloaded block arrive corrupted?
    pub fn corrupts(&self, alg: Algorithm, file: &str, block: usize, attempt: u32) -> bool {
        self.hit(
            self.corrupt_rate,
            FaultKind::Corrupt,
            alg,
            file,
            block,
            attempt,
        )
    }

    /// Extra stall latency for this attempt, if it stalls.
    pub fn stall(&self, alg: Algorithm, file: &str, block: usize, attempt: u32) -> f64 {
        if self.hit(self.stall_rate, FaultKind::Stall, alg, file, block, attempt) {
            self.stall_ms
        } else {
            0.0
        }
    }

    /// Wire-time multiplier for this attempt (1.0 = full-speed link).
    pub fn degrade(&self, alg: Algorithm, file: &str, block: usize, attempt: u32) -> f64 {
        if self.hit(
            self.degrade_rate,
            FaultKind::Degrade,
            alg,
            file,
            block,
            attempt,
        ) {
            self.degrade_factor
        } else {
            1.0
        }
    }

    /// Does the `op`-th disk write to `file` tear? `Some(kept)` means
    /// the process dies with only the first `kept` bytes (strictly fewer
    /// than `len`) durable; `None` means the write lands whole. Disk
    /// faults are keyed on the file and a monotone per-store operation
    /// counter — there is no algorithm or retry dimension on this path
    /// ([`Algorithm::Raw`] pads the shared hash tuple).
    pub fn torn_write(&self, file: &str, op: u64, len: usize) -> Option<usize> {
        if len == 0
            || !self.hit(
                self.torn_write_rate,
                FaultKind::TornWrite,
                Algorithm::Raw,
                file,
                op as usize,
                0,
            )
        {
            return None;
        }
        let frac = self.unit(FaultKind::TornWriteLen, Algorithm::Raw, file, op as usize, 0);
        Some((frac * len as f64) as usize)
    }

    /// Does this job panic mid-execution? Keyed on the file only (the
    /// algorithm/block/attempt dimensions are padded), so the same
    /// file draws the same verdict on every run, retry and worker — a
    /// poisonous input is deterministically poisonous.
    pub fn job_panics(&self, file: &str) -> bool {
        self.hit(
            self.panic_rate,
            FaultKind::JobPanic,
            Algorithm::Raw,
            file,
            0,
            0,
        )
    }

    /// Does this job kill its worker thread (panic outside the
    /// containment boundary)? Same file-only keying as
    /// [`job_panics`](Self::job_panics), and the two kinds draw from
    /// independent hash streams, so a killer is not necessarily a
    /// panicker and vice versa.
    pub fn kills_worker(&self, file: &str) -> bool {
        self.hit(
            self.worker_kill_rate,
            FaultKind::WorkerKill,
            Algorithm::Raw,
            file,
            0,
            0,
        )
    }

    /// Does the `op`-th wire operation on connection `conn` kill the
    /// connection outright (RST mid-stream)? Network faults are keyed
    /// on the connection name and a monotone per-stream operation
    /// counter — no algorithm or retry dimension ([`Algorithm::Raw`]
    /// pads the shared hash tuple).
    pub fn net_drops(&self, conn: &str, op: u64) -> bool {
        self.hit(
            self.conn_drop_rate,
            FaultKind::ConnDrop,
            Algorithm::Raw,
            conn,
            op as usize,
            0,
        )
    }

    /// Is the `op`-th write on `conn` torn? `Some(kept)` means only the
    /// first `kept` bytes (a strict prefix, possibly empty) reach the
    /// wire before the connection dies; `None` means the write lands
    /// whole.
    pub fn net_partial_write(&self, conn: &str, op: u64, len: usize) -> Option<usize> {
        if len == 0
            || !self.hit(
                self.partial_write_rate,
                FaultKind::PartialWrite,
                Algorithm::Raw,
                conn,
                op as usize,
                0,
            )
        {
            return None;
        }
        let frac = self.unit(
            FaultKind::PartialWriteLen,
            Algorithm::Raw,
            conn,
            op as usize,
            0,
        );
        Some((frac * len as f64) as usize)
    }

    /// Extra wall-clock delay the `op`-th wire operation on `conn`
    /// pays, ms (0.0 = no delay).
    pub fn net_delay(&self, conn: &str, op: u64) -> f64 {
        if self.hit(
            self.net_delay_rate,
            FaultKind::NetDelay,
            Algorithm::Raw,
            conn,
            op as usize,
            0,
        ) {
            self.net_delay_ms
        } else {
            0.0
        }
    }

    /// Does the `op`-th read on `conn` deliver a flipped bit?
    /// `Some((index, mask))` says which byte of the `len`-byte buffer
    /// to XOR with which single-bit mask; `None` means the bytes arrive
    /// clean.
    pub fn net_corrupt(&self, conn: &str, op: u64, len: usize) -> Option<(usize, u8)> {
        if len == 0
            || !self.hit(
                self.net_corrupt_rate,
                FaultKind::NetCorrupt,
                Algorithm::Raw,
                conn,
                op as usize,
                0,
            )
        {
            return None;
        }
        let frac = self.unit(FaultKind::NetCorruptPos, Algorithm::Raw, conn, op as usize, 0);
        let pos = (frac * len as f64) as usize;
        let bit = (frac * 4096.0) as u32 % 8;
        Some((pos.min(len - 1), 1u8 << bit))
    }

    /// Does shard `shard` die during soak window `window`? Keyed on the
    /// shard id and the window index only — the whole cluster agrees,
    /// per plan, on which shard is down when, so a chaos soak's
    /// kill/restart schedule is reproducible from its seed alone.
    pub fn shard_killed(&self, shard: u32, window: u64) -> bool {
        self.hit(
            self.shard_kill_rate,
            FaultKind::ShardKill,
            Algorithm::Raw,
            &format!("shard-{shard}"),
            window as usize,
            0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_fires() {
        let p = FaultPlan::none();
        assert!(p.is_none());
        for block in 0..50 {
            assert!(!p.upload_fails(Algorithm::Dnax, "f", block, 0));
            assert!(!p.download_fails(Algorithm::Dnax, "f", block, 0));
            assert!(!p.corrupts(Algorithm::Dnax, "f", block, 0));
            assert_eq!(p.stall(Algorithm::Dnax, "f", block, 0), 0.0);
            assert_eq!(p.degrade(Algorithm::Dnax, "f", block, 0), 1.0);
        }
    }

    #[test]
    fn shard_kill_schedule_is_deterministic_and_per_shard() {
        let plan = FaultPlan {
            shard_kill_rate: 0.5,
            ..FaultPlan::none()
        };
        assert!(!plan.is_none());
        let again = FaultPlan {
            shard_kill_rate: 0.5,
            ..FaultPlan::none()
        };
        let mut kills = 0u32;
        let mut diverged = false;
        for shard in 1..=3u32 {
            for window in 0..40u64 {
                let hit = plan.shard_killed(shard, window);
                assert_eq!(hit, again.shard_killed(shard, window));
                if hit {
                    kills += 1;
                }
                if hit != plan.shard_killed(shard + 10, window) {
                    diverged = true;
                }
            }
        }
        // At rate 0.5 over 120 draws, some kills and some divergence
        // between shard ids are certain for any sane hash.
        assert!(kills > 10, "only {kills} kills in 120 draws at rate 0.5");
        assert!(diverged, "shard id does not influence the kill schedule");
        assert!(!FaultPlan::none().shard_killed(1, 0));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = FaultPlan::uniform(42, 0.3);
        let b = FaultPlan::uniform(42, 0.3);
        for block in 0..100 {
            for attempt in 0..4 {
                assert_eq!(
                    a.upload_fails(Algorithm::Gzip, "x", block, attempt),
                    b.upload_fails(Algorithm::Gzip, "x", block, attempt)
                );
            }
        }
    }

    #[test]
    fn rates_are_respected_roughly() {
        let p = FaultPlan::uniform(7, 0.25);
        let hits = (0..4000)
            .filter(|&b| p.upload_fails(Algorithm::Ctw, "f", b, 0))
            .count();
        assert!((700..1300).contains(&hits), "{hits}/4000");
    }

    #[test]
    fn attempts_draw_independently() {
        // A block that fails at attempt 0 must not be doomed forever.
        let p = FaultPlan::uniform(11, 0.5);
        let survived = (0..200).any(|b| {
            p.upload_fails(Algorithm::Dnax, "f", b, 0)
                && !p.upload_fails(Algorithm::Dnax, "f", b, 1)
        });
        assert!(survived);
    }

    #[test]
    fn streams_differ_by_kind_and_algorithm() {
        let p = FaultPlan::uniform(3, 0.5);
        let up: Vec<bool> = (0..200)
            .map(|b| p.upload_fails(Algorithm::Dnax, "f", b, 0))
            .collect();
        let down: Vec<bool> = (0..200)
            .map(|b| p.download_fails(Algorithm::Dnax, "f", b, 0))
            .collect();
        let up_gzip: Vec<bool> = (0..200)
            .map(|b| p.upload_fails(Algorithm::Gzip, "f", b, 0))
            .collect();
        assert_ne!(up, down);
        assert_ne!(up, up_gzip);
    }

    #[test]
    fn torn_writes_keep_a_strict_prefix() {
        let p = FaultPlan::disk(13, 1.0);
        assert!(!p.is_none());
        for op in 0..200u64 {
            let kept = p.torn_write("seg-0", op, 64).expect("rate 1.0 always fires");
            assert!(kept < 64, "torn write must lose at least one byte");
        }
        // Zero-length writes cannot tear, and a clean plan never tears.
        assert_eq!(p.torn_write("seg-0", 0, 0), None);
        assert_eq!(FaultPlan::none().torn_write("seg-0", 0, 64), None);
        // Network rates stay untouched by the disk-only constructor.
        assert_eq!(p.upload_fail_rate, 0.0);
    }

    #[test]
    fn panic_injection_is_sticky_per_file() {
        let p = FaultPlan::panics(17, 0.3);
        assert!(!p.is_none());
        // A file's verdict never changes across repeated asks — the
        // property quarantine fingerprinting depends on.
        for i in 0..200 {
            let f = format!("job_{i}");
            let first = p.job_panics(&f);
            for _ in 0..5 {
                assert_eq!(p.job_panics(&f), first);
            }
        }
        let hits = (0..1000)
            .filter(|i| p.job_panics(&format!("j{i}")))
            .count();
        assert!((180..450).contains(&hits), "{hits}/1000 at rate 0.3");
        // Clean plans never panic, and network rates stay zero.
        assert!(!FaultPlan::none().job_panics("j0"));
        assert_eq!(p.upload_fail_rate, 0.0);
    }

    #[test]
    fn worker_kills_draw_independently_from_panics() {
        let p = FaultPlan {
            panic_rate: 0.5,
            worker_kill_rate: 0.5,
            ..FaultPlan::none()
        };
        let panics: Vec<bool> = (0..200).map(|i| p.job_panics(&format!("f{i}"))).collect();
        let kills: Vec<bool> = (0..200).map(|i| p.kills_worker(&format!("f{i}"))).collect();
        assert_ne!(panics, kills, "streams must be independent");
        assert!(!FaultPlan::none().kills_worker("f0"));
    }

    #[test]
    fn network_plan_draws_are_deterministic_and_typed() {
        let a = FaultPlan::network(23, 0.4);
        let b = FaultPlan::network(23, 0.4);
        assert!(!a.is_none());
        assert!(a.has_net_faults());
        assert!(!FaultPlan::none().has_net_faults());
        // Transfer/disk/panic faults stay zero under the network plan.
        assert_eq!(a.upload_fail_rate, 0.0);
        assert_eq!(a.torn_write_rate, 0.0);
        assert_eq!(a.panic_rate, 0.0);
        for op in 0..300u64 {
            assert_eq!(a.net_drops("c1", op), b.net_drops("c1", op));
            assert_eq!(a.net_partial_write("c1", op, 64), b.net_partial_write("c1", op, 64));
            assert_eq!(a.net_delay("c1", op), b.net_delay("c1", op));
            assert_eq!(a.net_corrupt("c1", op, 64), b.net_corrupt("c1", op, 64));
        }
        // Torn writes keep strict prefixes; corruption stays in bounds
        // and flips exactly one bit.
        for op in 0..300u64 {
            if let Some(kept) = a.net_partial_write("c1", op, 64) {
                assert!(kept < 64);
            }
            if let Some((pos, mask)) = a.net_corrupt("c1", op, 64) {
                assert!(pos < 64);
                assert_eq!(mask.count_ones(), 1);
            }
        }
        // Distinct connections draw from independent streams.
        let c1: Vec<bool> = (0..200).map(|op| a.net_drops("c1", op)).collect();
        let c2: Vec<bool> = (0..200).map(|op| a.net_drops("c2", op)).collect();
        assert_ne!(c1, c2);
        // Rough rate check: drops fire at rate/4 = 0.1.
        let hits = (0..2000u64).filter(|&op| a.net_drops("cX", op)).count();
        assert!((120..300).contains(&hits), "{hits}/2000 at rate 0.1");
        // The clean plan never injects anything, zero-length buffers
        // cannot tear or corrupt.
        let none = FaultPlan::none();
        assert!(!none.net_drops("c", 0));
        assert_eq!(none.net_partial_write("c", 0, 64), None);
        assert_eq!(a.net_partial_write("c", 0, 0), None);
        assert_eq!(a.net_corrupt("c", 0, 0), None);
        assert_eq!(none.net_delay("c", 0), 0.0);
    }

    #[test]
    fn torn_write_is_deterministic_per_op() {
        let a = FaultPlan::disk(5, 0.4);
        let b = FaultPlan::disk(5, 0.4);
        for op in 0..300u64 {
            assert_eq!(a.torn_write("m", op, 128), b.torn_write("m", op, 128));
        }
        let fired = (0..300u64).filter(|&op| a.torn_write("m", op, 128).is_some()).count();
        assert!((60..180).contains(&fired), "{fired}/300 at rate 0.4");
    }
}
