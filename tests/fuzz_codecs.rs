//! Hostile-input property suite for every registered codec.
//!
//! Real exchanged corpora arrive malformed, truncated and mislabeled
//! (arXiv:2006.02232); the service's supervision layer treats a
//! panicking decode as a last-resort containment event, so the codecs
//! themselves must make it a non-event: every
//! [`Compressor::decompress`] implementation returns a **typed error**
//! on garbage — it never panics, and never pre-allocates unbounded
//! memory off a lying header.
//!
//! Three attack surfaces, swept for every algorithm in
//! [`Algorithm::HORIZONTAL`]:
//!
//! 1. **random payloads** — noise bytes wrapped in a syntactically valid
//!    container;
//! 2. **mutated real blobs** — a genuine compressed sequence with bit
//!    flips, truncations, and payload splices; if a mutant still decodes
//!    `Ok`, it must decode to *exactly the original sequence* (the
//!    checksum caught the tamper or the tamper was immaterial);
//! 3. **lying headers** — `original_len` cranked to absurd values over
//!    tiny payloads, which must fail fast instead of OOMing.

use dnacomp::algos::{compressor_for, Algorithm, CompressedBlob, FramedBlob};
use dnacomp::codec::checksum::{mix64, unit_interval};
use dnacomp::seq::gen::GenomeModel;

/// Cheap deterministic byte stream for fuzz payloads.
fn noise_bytes(seed: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (mix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as u8).collect()
}

fn sample_blob(alg: Algorithm, seed: u64, len: usize) -> CompressedBlob {
    let seq = GenomeModel::default().generate(len, seed);
    compressor_for(alg)
        .compress(&seq)
        .unwrap_or_else(|e| panic!("{alg}: compressing clean input failed: {e}"))
}

/// Decode must be total: `Ok` or typed `Err`, never a panic. Returns
/// whether it decoded.
fn assert_total(alg: Algorithm, blob: &CompressedBlob, what: &str) -> bool {
    let c = compressor_for(alg);
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.decompress(blob))) {
        Ok(_) => true,
        Err(p) => {
            let msg = dnacomp::core::panic_message(p.as_ref());
            panic!("{alg}: decompress PANICKED on {what}: {msg}");
        }
    }
}

#[test]
fn random_payloads_never_panic_any_codec() {
    for alg in Algorithm::HORIZONTAL {
        for case in 0..40u64 {
            let seed = (alg.tag() as u64) << 32 | case;
            let len = (mix64(seed) % 512) as usize;
            let blob = CompressedBlob {
                version: 1 + (mix64(seed ^ 4) % 2) as u8,
                algorithm: alg,
                original_len: (mix64(seed ^ 1) % 10_000) as usize,
                checksum: mix64(seed ^ 2),
                payload: noise_bytes(seed ^ 3, len),
            };
            assert_total(alg, &blob, &format!("random payload case {case}"));
        }
    }
}

#[test]
fn mutated_real_blobs_never_panic_and_never_lie() {
    for alg in Algorithm::HORIZONTAL {
        let original = GenomeModel::default().generate(3_000, 77);
        let clean = compressor_for(alg).compress(&original).unwrap();
        let c = compressor_for(alg);

        // Bit flips at deterministic positions across the payload.
        for case in 0..60u64 {
            let mut mutant = clean.clone();
            if mutant.payload.is_empty() {
                break;
            }
            let at = (mix64((alg.tag() as u64) << 40 | case) as usize) % mutant.payload.len();
            let bit = 1u8 << (case % 8);
            mutant.payload[at] ^= bit;
            assert_total(alg, &mutant, &format!("bit flip at {at}"));
            if let Ok(seq) = c.decompress(&mutant) {
                // A surviving mutant must decode to the truth — the
                // checksum rejects everything else.
                assert_eq!(seq, original, "{alg}: bit flip at {at} silently corrupted output");
            }
        }

        // Truncations at every eighth of the payload.
        for i in 0..8 {
            let mut mutant = clean.clone();
            mutant.payload.truncate(mutant.payload.len() * i / 8);
            assert_total(alg, &mutant, &format!("truncation to {i}/8"));
            if let Ok(seq) = c.decompress(&mutant) {
                assert_eq!(seq, original, "{alg}: truncation to {i}/8 silently corrupted output");
            }
        }

        // Splice: another sequence's payload under this blob's header.
        let other = sample_blob(alg, 78, 2_000);
        let mut spliced = clean.clone();
        spliced.payload = other.payload;
        assert_total(alg, &spliced, "payload splice");
        if let Ok(seq) = c.decompress(&spliced) {
            assert_eq!(seq, original, "{alg}: splice silently corrupted output");
        }
    }
}

#[test]
fn lying_headers_fail_fast_without_unbounded_preallocation() {
    // A tiny payload claiming an enormous original length must come
    // back as a typed error quickly; the bounded-preallocation contract
    // (`CompressedBlob::decode_capacity`) keeps the upfront allocation
    // at ≤ MAX_PREALLOC_BASES no matter what the header says.
    for alg in Algorithm::HORIZONTAL {
        for lie in [usize::MAX, usize::MAX / 2, 1 << 40, 1 << 33] {
            let blob = CompressedBlob {
                version: 1 + (lie % 2) as u8,
                algorithm: alg,
                original_len: lie,
                checksum: 0xDEAD_BEEF,
                payload: noise_bytes(lie as u64, 64),
            };
            assert_total(alg, &blob, &format!("lying header len={lie}"));
            assert!(
                compressor_for(alg).decompress(&blob).is_err(),
                "{alg}: a 64-byte payload cannot legitimately decode {lie} bases"
            );
        }
    }
}

/// LEB128 writer mirroring the frame wire format, so tests can forge
/// headers the honest serialiser would never emit.
fn push_uvarint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Forge a frame header claiming `n_blocks`/`total_len` over a tiny
/// payload. Geometry is kept self-consistent so parsing reaches the
/// affordability check rather than bailing on arithmetic mismatch.
fn forged_frame_header(block_size: u64, total_len: u64, payload_bytes: usize) -> Vec<u8> {
    let mut bytes = vec![b'D', b'F', 1];
    push_uvarint(&mut bytes, block_size);
    push_uvarint(&mut bytes, total_len.div_ceil(block_size));
    push_uvarint(&mut bytes, total_len);
    bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes());
    bytes.extend(noise_bytes(9, payload_bytes));
    bytes
}

#[test]
fn frame_lying_block_count_rejected_before_allocation() {
    // A self-consistent header declaring a billion 1-base blocks over a
    // 64-byte payload: the affordability check (each declared block
    // costs ≥ MIN_RECORD_BYTES of payload) must refuse it before the
    // block Vec is sized by the lie. The wall-clock bound is the
    // observable proxy for "no allocation proportional to the claim".
    for (block_size, total_len) in [(1u64, 1u64 << 30), (4, 1 << 32), (1, u32::MAX as u64)] {
        let bytes = forged_frame_header(block_size, total_len, 64);
        let started = std::time::Instant::now();
        let err = FramedBlob::from_bytes(&bytes).expect_err("forged count must be rejected");
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "rejecting a lying count took {:?} — it allocated first",
            started.elapsed()
        );
        let msg = err.to_string();
        assert!(
            msg.contains("block count") || msg.contains("length exceeds"),
            "unexpected rejection reason for ({block_size}, {total_len}): {msg}"
        );
    }
}

#[test]
fn frame_lying_record_lengths_fail_fast() {
    // A plausible two-block header whose first record length points past
    // the end of the buffer.
    let mut bytes = vec![b'D', b'F', 1];
    push_uvarint(&mut bytes, 100); // block_size
    push_uvarint(&mut bytes, 2); // n_blocks
    push_uvarint(&mut bytes, 200); // total_len
    bytes.extend_from_slice(&0u64.to_le_bytes());
    push_uvarint(&mut bytes, 1 << 40); // record_len: a lie
    bytes.extend(noise_bytes(3, 40));
    let err = FramedBlob::from_bytes(&bytes).expect_err("lying record length must be rejected");
    assert!(err.to_string().contains("truncated"), "got: {err}");
}

#[test]
fn frame_wire_mutations_never_panic_and_never_lie() {
    // Start from genuine frames (two algorithms, boundary-straddling
    // geometry) and sweep bit flips and truncations over the full wire
    // image — header varints, checksum and block records alike.
    let original = GenomeModel::default().generate(700, 4242);
    for alg in [Algorithm::Raw, Algorithm::Dnax] {
        let clean = dnacomp::algos::frame::compress_serial(
            compressor_for(alg).as_ref(),
            &original,
            333,
        )
        .unwrap()
        .to_bytes();

        for case in 0..120u64 {
            let mut mutant = clean.clone();
            let at = (mix64((alg.tag() as u64) << 32 | case) as usize) % mutant.len();
            mutant[at] ^= 1u8 << (case % 8);
            // Parsing + decoding must be total; a surviving mutant must
            // decode to the truth (whole-frame checksum catches the rest).
            if let Ok(frame) = FramedBlob::from_bytes(&mutant) {
                if let Ok(seq) = dnacomp::algos::frame::decompress_serial(&frame) {
                    assert_eq!(seq, original, "{alg}: flip at {at} silently corrupted output");
                }
            }
        }

        for i in 0..16 {
            let mut mutant = clean.clone();
            mutant.truncate(mutant.len() * i / 16);
            assert!(
                FramedBlob::from_bytes(&mutant).is_err(),
                "{alg}: truncation to {i}/16 of the frame parsed Ok"
            );
        }
    }
}

#[test]
fn container_wire_format_fuzz_never_panics() {
    // One layer down: CompressedBlob::from_bytes on raw garbage.
    for case in 0..200u64 {
        let len = (mix64(case) % 96) as usize;
        let mut bytes = noise_bytes(case, len);
        // Half the cases get a valid-looking prefix so parsing gets
        // past the magic and into the interesting varint/checksum code.
        if case % 2 == 0 && bytes.len() >= 4 {
            bytes[0] = b'D';
            bytes[1] = b'X';
            bytes[2] = 1;
            bytes[3] = (unit_interval(mix64(case ^ 5)) * 16.0) as u8;
        }
        let _ = CompressedBlob::from_bytes(&bytes); // must not panic
    }
}

// ---------------------------------------------------------------------------
// Speed-tier formats: rANS frequency tables, rANS decoder headers and
// BWT section headers under attack
// ---------------------------------------------------------------------------

use dnacomp::codec::rans::{FreqTable, RansDecoder, RANS_TABLE_BITS};

#[test]
fn rans_freq_table_forgeries_refused_before_allocation() {
    // Genuine table round-trips.
    let table = FreqTable::build(&[900, 5, 64, 31]);
    let mut clean = Vec::new();
    table.write(&mut clean);
    let mut pos = 0;
    let back = FreqTable::read(&clean, &mut pos, 8).expect("genuine table reads");
    assert_eq!(pos, clean.len());
    assert_eq!(back.n_symbols(), 4);

    // A forged symbol count the buffer cannot pay for must be refused
    // on affordability, before the frequency Vec is sized by the lie.
    for forged in [9u64, 1 << 20, 1 << 40, u64::MAX >> 1] {
        let mut bytes = Vec::new();
        push_uvarint(&mut bytes, forged);
        bytes.extend(noise_bytes(forged, 16));
        let started = std::time::Instant::now();
        let mut pos = 0;
        assert!(
            FreqTable::read(&bytes, &mut pos, 8).is_err(),
            "forged symbol count {forged} read Ok"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "rejecting a lying symbol count took {:?} — it allocated first",
            started.elapsed()
        );
    }

    // Structural lies with honest lengths: zero frequency, a sum that
    // overflows the 2^TABLE_BITS scale, and a sum that falls short.
    let scale = 1u64 << RANS_TABLE_BITS;
    for freqs in [
        vec![0u64, scale],
        vec![scale, scale],
        vec![1, 2, 3],
        vec![scale - 1],
    ] {
        let mut bytes = Vec::new();
        push_uvarint(&mut bytes, freqs.len() as u64);
        for &f in &freqs {
            push_uvarint(&mut bytes, f);
        }
        bytes.extend_from_slice(&[0u8; 8]); // checksum never reached
        let mut pos = 0;
        assert!(
            FreqTable::read(&bytes, &mut pos, 8).is_err(),
            "structurally invalid table {freqs:?} read Ok"
        );
    }

    // Every single-bit flip over a genuine image is caught — by a
    // structural check or by the trailing FNV-1a — and every truncation
    // is refused.
    for at in 0..clean.len() {
        for bit in 0..8 {
            let mut mutant = clean.clone();
            mutant[at] ^= 1 << bit;
            let mut pos = 0;
            assert!(
                FreqTable::read(&mutant, &mut pos, 8).is_err(),
                "table flip at byte {at} bit {bit} read Ok"
            );
        }
        let mut pos = 0;
        assert!(
            FreqTable::read(&clean[..at], &mut pos, 8).is_err(),
            "table truncated to {at} bytes read Ok"
        );
    }
}

#[test]
fn rans_decoder_header_forgeries_are_typed_errors() {
    // The interleaved decoder needs two 4-byte states, both ≥ the
    // renormalisation floor. Short buffers and sub-floor states are
    // typed errors; arbitrary noise never panics.
    for len in 0..8 {
        assert!(
            RansDecoder::new(&noise_bytes(len as u64, len)).is_err(),
            "{len}-byte rANS stream decoded Ok"
        );
    }
    assert!(
        RansDecoder::new(&[0u8; 8]).is_err(),
        "zero states are below the renormalisation floor"
    );
    for case in 0..200u64 {
        let len = 8 + (mix64(case) % 64) as usize;
        let _ = RansDecoder::new(&noise_bytes(case, len)); // must not panic
    }
}

#[test]
fn bwt_forged_section_counts_refused_before_allocation() {
    use dnacomp::algos::blob::VERSION_SPEED;
    let c = compressor_for(Algorithm::Bwt);
    // A payload whose leading uvarint claims an absurd section count
    // over a handful of bytes: refused fast, before any proportional
    // allocation.
    for forged in [1u64 << 20, 1 << 40, u64::MAX >> 2] {
        let mut payload = Vec::new();
        push_uvarint(&mut payload, forged);
        payload.extend(noise_bytes(forged, 32));
        let blob = CompressedBlob {
            version: VERSION_SPEED,
            algorithm: Algorithm::Bwt,
            original_len: 4_096,
            checksum: 0xDEAD_BEEF,
            payload,
        };
        let started = std::time::Instant::now();
        assert!(
            compressor_for(Algorithm::Bwt).decompress(&blob).is_err(),
            "forged section count {forged} decoded Ok"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "rejecting a lying section count took {:?} — it allocated first",
            started.elapsed()
        );
    }
    // Primary-index forgeries inside an otherwise genuine blob: flip
    // bytes early in the first section (count, length, primary varints
    // live there). Typed error or exact original, never a panic.
    let original = GenomeModel::default().generate(2_500, 1234);
    let clean = c.compress(&original).unwrap();
    for at in 0..clean.payload.len().min(12) {
        for bit in [0x01u8, 0x08, 0x80] {
            let mut mutant = clean.clone();
            mutant.payload[at] ^= bit;
            assert_total(Algorithm::Bwt, &mutant, &format!("BWT header flip at {at}"));
            if let Ok(seq) = c.decompress(&mutant) {
                assert_eq!(seq, original, "BWT flip at {at} silently corrupted output");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Router wire frames: the "DW" protocol's ring-aware types under attack
// ---------------------------------------------------------------------------

use dnacomp::server::{
    decode_frame, migrate_batch_checksum, request_frame, ProtoError, Request, MAX_WIRE_PAYLOAD,
};

/// Build a genuine MigrateBatch request with `n` small records.
fn sample_migrate(n: usize, seed: u64) -> Request {
    Request::MigrateBatch {
        epoch: mix64(seed),
        records: (0..n)
            .map(|i| {
                let mut key = [0u8; 16];
                key.copy_from_slice(&noise_bytes(seed ^ i as u64, 16));
                (key, noise_bytes(seed.wrapping_add(i as u64), 24 + i))
            })
            .collect(),
    }
}

#[test]
fn router_frames_survive_mutation_with_typed_errors() {
    // Genuine frames for every ring-aware request type.
    let frames: Vec<Vec<u8>> = vec![
        request_frame(&Request::HelloEpoch {
            version: 1,
            epoch: 0xDEAD_BEEF_0BAD_F00D,
            shard: 3,
        }),
        request_frame(&Request::Keys),
        request_frame(&Request::Remove { key: [0xA5; 16] }),
        request_frame(&sample_migrate(4, 99)),
    ];
    for (f, clean) in frames.iter().enumerate() {
        // Whole-frame byte flips: the frame layer's FNV checksum or the
        // payload decoder must answer with a typed error — never a panic.
        for i in 0..clean.len() {
            for bit in [0x01u8, 0x80] {
                let mut mutant = clean.clone();
                mutant[i] ^= bit;
                let r = std::panic::catch_unwind(|| {
                    if let Ok((t, payload, _)) = decode_frame(&mutant, MAX_WIRE_PAYLOAD) {
                        let _ = Request::decode(t, &payload);
                    }
                });
                assert!(r.is_ok(), "frame {f}: flip at byte {i} panicked");
            }
        }
        // Truncations never parse as a complete frame.
        for i in 0..clean.len() {
            assert!(
                decode_frame(&clean[..i], MAX_WIRE_PAYLOAD).is_err(),
                "frame {f}: truncation to {i} bytes parsed Ok"
            );
        }
        // Payload-level mutation (bypassing the frame checksum): the
        // request decoder itself must stay total, and any MigrateBatch
        // that still decodes Ok must carry checksum-consistent records.
        let (t, payload, _) = decode_frame(clean, MAX_WIRE_PAYLOAD).unwrap();
        for i in 0..payload.len() {
            let mut mutant = payload.clone();
            mutant[i] ^= 0x40;
            let r = std::panic::catch_unwind(|| Request::decode(t, &mutant));
            match r {
                Ok(Ok(Request::MigrateBatch { records, .. })) => {
                    // The batch checksum held, so the records are what
                    // the (mutated) trailer vouches for.
                    let _ = migrate_batch_checksum(&records);
                }
                Ok(_) => {}
                Err(_) => panic!("frame {f}: payload flip at byte {i} panicked"),
            }
        }
    }
}

#[test]
fn forged_migrate_counts_refused_before_allocation() {
    // A lying record count over a near-empty payload must be refused
    // on affordability, before any record vector is allocated.
    for forged in [5u64, 1 << 20, u64::MAX >> 2] {
        let mut payload = Vec::new();
        payload.extend_from_slice(&7u64.to_le_bytes()); // epoch
        push_uvarint(&mut payload, forged);
        payload.extend_from_slice(&noise_bytes(forged, 16)); // scraps
        match Request::decode(0x33, &payload) {
            Err(ProtoError::Malformed(_)) | Err(ProtoError::Truncated) => {}
            other => panic!("forged count {forged} not refused: {other:?}"),
        }
    }
    // A batch whose trailer checksum lies about its records is refused
    // even when every length field is internally consistent.
    let clean = request_frame(&sample_migrate(3, 17));
    let (t, mut payload, _) = decode_frame(&clean, MAX_WIRE_PAYLOAD).unwrap();
    let n = payload.len();
    payload[n - 1] ^= 0xFF; // corrupt the batch checksum trailer
    match Request::decode(t, &payload) {
        Err(ProtoError::Malformed(_)) => {}
        other => panic!("lying batch checksum not refused: {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// LSM on-disk formats: run footers, block indexes, bloom filters and
// transition manifest entries under attack
// ---------------------------------------------------------------------------

use dnacomp::store::manifest::{Entry as LogEntry, Location as StoreLocation, MAX_DROP_LIST};
use dnacomp::store::sstable::{self, Footer, RunMeta, FOOTER_LEN};
use dnacomp::store::{Bloom, ContentKey};

fn sample_key(i: u64) -> ContentKey {
    let mut k = [0u8; 16];
    k[..8].copy_from_slice(&i.to_be_bytes());
    k[8..].copy_from_slice(&mix64(i).to_be_bytes());
    ContentKey(k)
}

/// A genuine run image (data blocks + index + bloom + footer) to
/// carve attack surfaces out of.
fn sample_run_bytes() -> (Vec<u8>, Footer) {
    let records: Vec<(ContentKey, Vec<u8>)> = (0..40u64)
        .map(|i| (sample_key(i), noise_bytes(i, 48 + (i as usize % 17))))
        .collect();
    let built = sstable::build_run(&records, 256, 10);
    let footer = Footer::decode(&built.bytes[built.bytes.len() - FOOTER_LEN..])
        .expect("freshly built run has a valid footer");
    (built.bytes, footer)
}

#[test]
fn run_footer_mutations_always_rejected() {
    let (bytes, _) = sample_run_bytes();
    let clean = &bytes[bytes.len() - FOOTER_LEN..];
    assert!(Footer::decode(clean).is_ok());
    // Every single-bit flip — magic, version, the four length fields,
    // both keys and the stored checksum itself — must come back as a
    // typed error: the trailing FNV covers everything before it, and a
    // flip inside the stored digest can no longer match the content.
    for at in 0..FOOTER_LEN {
        for bit in 0..8 {
            let mut mutant = clean.to_vec();
            mutant[at] ^= 1 << bit;
            assert!(
                Footer::decode(&mutant).is_err(),
                "footer flip at byte {at} bit {bit} decoded Ok"
            );
        }
    }
    // Anything that is not exactly FOOTER_LEN bytes is refused before
    // any field is read.
    for len in [0, 1, FOOTER_LEN - 1, FOOTER_LEN + 1] {
        let mut wrong = clean.to_vec();
        wrong.resize(len, 0);
        assert!(Footer::decode(&wrong).is_err(), "footer of {len} bytes decoded Ok");
    }
}

#[test]
fn run_index_lying_counts_refused_before_allocation() {
    let (bytes, footer) = sample_run_bytes();
    let start = footer.data_len as usize;
    let clean = &bytes[start..start + footer.index_len as usize];
    assert!(sstable::decode_index(clean).is_ok());
    // A forged header claiming millions of entries over a few bytes
    // must be refused on affordability, before the entry Vec is sized
    // by the lie. The wall clock is the observable proxy.
    for forged in [1u64 << 20, 1 << 40, u64::MAX >> 1] {
        let mut forged_bytes = vec![b'I', b'X'];
        push_uvarint(&mut forged_bytes, forged);
        forged_bytes.extend(noise_bytes(forged, 32));
        let started = std::time::Instant::now();
        assert!(
            sstable::decode_index(&forged_bytes).is_err(),
            "forged index count {forged} decoded Ok"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "rejecting a lying index count took {:?} — it allocated first",
            started.elapsed()
        );
    }
    // Bit flips anywhere in a genuine index are caught by the trailing
    // checksum; truncations never parse.
    for case in 0..80u64 {
        let at = (mix64(case ^ 0x1D) as usize) % clean.len();
        let mut mutant = clean.to_vec();
        mutant[at] ^= 1u8 << (case % 8);
        assert!(
            sstable::decode_index(&mutant).is_err(),
            "index flip at byte {at} decoded Ok"
        );
    }
    for i in 0..8 {
        assert!(
            sstable::decode_index(&clean[..clean.len() * i / 8]).is_err(),
            "index truncation to {i}/8 decoded Ok"
        );
    }
}

#[test]
fn bloom_header_lies_refused_before_allocation() {
    let mut bloom = Bloom::sized_for(64, 10);
    for i in 0..64u64 {
        bloom.insert(&sample_key(i));
    }
    let clean = bloom.encode();
    let (back, used) = Bloom::decode(&clean).expect("genuine bloom decodes");
    assert_eq!(used, clean.len());
    for i in 0..64u64 {
        assert!(back.contains(&sample_key(i)), "decoded bloom lost key {i}");
    }
    // A declared size the input bytes cannot pay for must be refused
    // before the word Vec exists; absurd probe counts likewise.
    for (bits, probes) in [(1u64 << 32, 7u8), (1 << 31, 7), (4096, 0), (4096, 31)] {
        let mut forged = vec![b'B', b'F', 1];
        push_uvarint(&mut forged, bits);
        forged.push(probes);
        push_uvarint(&mut forged, 64);
        forged.extend(noise_bytes(bits ^ probes as u64, 64));
        let started = std::time::Instant::now();
        assert!(
            Bloom::decode(&forged).is_err(),
            "forged bloom (bits={bits}, probes={probes}) decoded Ok"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "rejecting a lying bloom header took {:?} — it allocated first",
            started.elapsed()
        );
    }
    // Whole-image flips and truncations: typed errors only.
    for case in 0..80u64 {
        let at = (mix64(case ^ 0xB1) as usize) % clean.len();
        let mut mutant = clean.clone();
        mutant[at] ^= 1u8 << (case % 8);
        assert!(Bloom::decode(&mutant).is_err(), "bloom flip at byte {at} decoded Ok");
    }
    for i in 0..8 {
        assert!(
            Bloom::decode(&clean[..clean.len() * i / 8]).is_err(),
            "bloom truncation to {i}/8 decoded Ok"
        );
    }
}

#[test]
fn manifest_transition_entries_reject_forgery_and_tearing() {
    let meta = RunMeta {
        id: 42,
        level: 3,
        records: 1_000,
        bytes: 1 << 20,
        min_key: sample_key(1),
        max_key: sample_key(999),
    };
    let entries = [
        LogEntry::Seal {
            run: Some(meta),
            segments: (0..20).collect(),
        },
        LogEntry::Seal {
            run: None,
            segments: vec![7],
        },
        LogEntry::Merge {
            run: Some(meta),
            runs: (100..104).collect(),
        },
        LogEntry::RemoveRun {
            key: sample_key(5),
            run: 42,
            len: 321,
        },
        LogEntry::Revive {
            key: sample_key(5),
            run: 42,
        },
        LogEntry::AddRun { meta },
        LogEntry::Add {
            key: sample_key(8),
            location: StoreLocation {
                segment: 3,
                offset: 4096,
                len: 128,
                algorithm: Algorithm::Dnax,
                original_len: 400,
            },
        },
    ];
    for (n, entry) in entries.iter().enumerate() {
        let clean = entry.encode();
        let (back, used) = LogEntry::decode(&clean).expect("genuine entry decodes");
        assert_eq!(&back, entry, "entry {n} round-trip");
        assert_eq!(used, clean.len());
        // The torn-tail convention: every truncation and every bit flip
        // is `None` — replay stops, it never guesses.
        for i in 0..clean.len() {
            assert!(
                LogEntry::decode(&clean[..i]).is_none(),
                "entry {n}: truncation to {i} bytes decoded Some"
            );
            for bit in [0x01u8, 0x80] {
                let mut mutant = clean.clone();
                mutant[i] ^= bit;
                assert!(
                    LogEntry::decode(&mutant).is_none(),
                    "entry {n}: flip at byte {i} decoded Some"
                );
            }
        }
    }
    // A drop list over the chunking cap (or over what the bytes can
    // pay for) is refused before the id Vec is sized by the claim.
    for forged in [MAX_DROP_LIST as u64 + 1, 1 << 30, u64::MAX >> 8] {
        let mut body = vec![6u8, 0]; // Seal, no output run
        push_uvarint(&mut body, forged);
        body.extend(noise_bytes(forged, 24));
        // Give the forgery an honest checksum so it reaches the
        // affordability check instead of dying on the digest.
        let digest = {
            let mut h = dnacomp::codec::checksum::Fnv1a::new();
            h.update(&body);
            h.digest()
        };
        body.extend_from_slice(&digest.to_le_bytes());
        let started = std::time::Instant::now();
        assert!(
            LogEntry::decode(&body).is_none(),
            "forged drop list of {forged} ids decoded Some"
        );
        assert!(
            started.elapsed() < std::time::Duration::from_millis(50),
            "rejecting a lying drop list took {:?} — it allocated first",
            started.elapsed()
        );
    }
}

#[test]
fn forged_epochs_and_shard_ids_decode_to_exactly_what_was_sent() {
    // Epoch and shard id are *data* at the codec layer — policy (the
    // router's epoch gate, the shard's identity check) rejects them
    // later with typed WrongShard errors. The decoder's job is to
    // neither panic nor mangle: every in-range forgery round-trips.
    for seed in 0..50u64 {
        let epoch = mix64(seed);
        let shard = (mix64(seed ^ 0xF00D) & 0xFFFF_FFFF) as u32;
        let frame = request_frame(&Request::HelloEpoch {
            version: (seed % 4) as u8,
            epoch,
            shard,
        });
        let (t, payload, _) = decode_frame(&frame, MAX_WIRE_PAYLOAD).unwrap();
        match Request::decode(t, &payload).unwrap() {
            Request::HelloEpoch {
                epoch: e,
                shard: s,
                ..
            } => {
                assert_eq!(e, epoch);
                assert_eq!(s, shard);
            }
            other => panic!("HelloEpoch decoded as {other:?}"),
        }
    }
    // A shard id over u32::MAX is the one forgery the decoder itself
    // refuses: it cannot be represented, so it must not be truncated
    // into an innocent-looking id.
    let mut payload = vec![1u8]; // version
    payload.extend_from_slice(&42u64.to_le_bytes()); // epoch
    push_uvarint(&mut payload, u64::from(u32::MAX) + 1);
    match Request::decode(0x30, &payload) {
        Err(ProtoError::Malformed(_)) => {}
        other => panic!("oversized shard id not refused: {other:?}"),
    }
}
