//! Hostile-input property suite for every registered codec.
//!
//! Real exchanged corpora arrive malformed, truncated and mislabeled
//! (arXiv:2006.02232); the service's supervision layer treats a
//! panicking decode as a last-resort containment event, so the codecs
//! themselves must make it a non-event: every
//! [`Compressor::decompress`] implementation returns a **typed error**
//! on garbage — it never panics, and never pre-allocates unbounded
//! memory off a lying header.
//!
//! Three attack surfaces, swept for every algorithm in
//! [`Algorithm::HORIZONTAL`]:
//!
//! 1. **random payloads** — noise bytes wrapped in a syntactically valid
//!    container;
//! 2. **mutated real blobs** — a genuine compressed sequence with bit
//!    flips, truncations, and payload splices; if a mutant still decodes
//!    `Ok`, it must decode to *exactly the original sequence* (the
//!    checksum caught the tamper or the tamper was immaterial);
//! 3. **lying headers** — `original_len` cranked to absurd values over
//!    tiny payloads, which must fail fast instead of OOMing.

use dnacomp::algos::{compressor_for, Algorithm, CompressedBlob};
use dnacomp::codec::checksum::{mix64, unit_interval};
use dnacomp::seq::gen::GenomeModel;

/// Cheap deterministic byte stream for fuzz payloads.
fn noise_bytes(seed: u64, len: usize) -> Vec<u8> {
    (0..len).map(|i| (mix64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as u8).collect()
}

fn sample_blob(alg: Algorithm, seed: u64, len: usize) -> CompressedBlob {
    let seq = GenomeModel::default().generate(len, seed);
    compressor_for(alg)
        .compress(&seq)
        .unwrap_or_else(|e| panic!("{alg}: compressing clean input failed: {e}"))
}

/// Decode must be total: `Ok` or typed `Err`, never a panic. Returns
/// whether it decoded.
fn assert_total(alg: Algorithm, blob: &CompressedBlob, what: &str) -> bool {
    let c = compressor_for(alg);
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.decompress(blob))) {
        Ok(_) => true,
        Err(p) => {
            let msg = dnacomp::core::panic_message(p.as_ref());
            panic!("{alg}: decompress PANICKED on {what}: {msg}");
        }
    }
}

#[test]
fn random_payloads_never_panic_any_codec() {
    for alg in Algorithm::HORIZONTAL {
        for case in 0..40u64 {
            let seed = (alg.tag() as u64) << 32 | case;
            let len = (mix64(seed) % 512) as usize;
            let blob = CompressedBlob {
                algorithm: alg,
                original_len: (mix64(seed ^ 1) % 10_000) as usize,
                checksum: mix64(seed ^ 2),
                payload: noise_bytes(seed ^ 3, len),
            };
            assert_total(alg, &blob, &format!("random payload case {case}"));
        }
    }
}

#[test]
fn mutated_real_blobs_never_panic_and_never_lie() {
    for alg in Algorithm::HORIZONTAL {
        let original = GenomeModel::default().generate(3_000, 77);
        let clean = compressor_for(alg).compress(&original).unwrap();
        let c = compressor_for(alg);

        // Bit flips at deterministic positions across the payload.
        for case in 0..60u64 {
            let mut mutant = clean.clone();
            if mutant.payload.is_empty() {
                break;
            }
            let at = (mix64((alg.tag() as u64) << 40 | case) as usize) % mutant.payload.len();
            let bit = 1u8 << (case % 8);
            mutant.payload[at] ^= bit;
            assert_total(alg, &mutant, &format!("bit flip at {at}"));
            if let Ok(seq) = c.decompress(&mutant) {
                // A surviving mutant must decode to the truth — the
                // checksum rejects everything else.
                assert_eq!(seq, original, "{alg}: bit flip at {at} silently corrupted output");
            }
        }

        // Truncations at every eighth of the payload.
        for i in 0..8 {
            let mut mutant = clean.clone();
            mutant.payload.truncate(mutant.payload.len() * i / 8);
            assert_total(alg, &mutant, &format!("truncation to {i}/8"));
            if let Ok(seq) = c.decompress(&mutant) {
                assert_eq!(seq, original, "{alg}: truncation to {i}/8 silently corrupted output");
            }
        }

        // Splice: another sequence's payload under this blob's header.
        let other = sample_blob(alg, 78, 2_000);
        let mut spliced = clean.clone();
        spliced.payload = other.payload;
        assert_total(alg, &spliced, "payload splice");
        if let Ok(seq) = c.decompress(&spliced) {
            assert_eq!(seq, original, "{alg}: splice silently corrupted output");
        }
    }
}

#[test]
fn lying_headers_fail_fast_without_unbounded_preallocation() {
    // A tiny payload claiming an enormous original length must come
    // back as a typed error quickly; the bounded-preallocation contract
    // (`CompressedBlob::decode_capacity`) keeps the upfront allocation
    // at ≤ MAX_PREALLOC_BASES no matter what the header says.
    for alg in Algorithm::HORIZONTAL {
        for lie in [usize::MAX, usize::MAX / 2, 1 << 40, 1 << 33] {
            let blob = CompressedBlob {
                algorithm: alg,
                original_len: lie,
                checksum: 0xDEAD_BEEF,
                payload: noise_bytes(lie as u64, 64),
            };
            assert_total(alg, &blob, &format!("lying header len={lie}"));
            assert!(
                compressor_for(alg).decompress(&blob).is_err(),
                "{alg}: a 64-byte payload cannot legitimately decode {lie} bases"
            );
        }
    }
}

#[test]
fn container_wire_format_fuzz_never_panics() {
    // One layer down: CompressedBlob::from_bytes on raw garbage.
    for case in 0..200u64 {
        let len = (mix64(case) % 96) as usize;
        let mut bytes = noise_bytes(case, len);
        // Half the cases get a valid-looking prefix so parsing gets
        // past the magic and into the interesting varint/checksum code.
        if case % 2 == 0 && bytes.len() >= 4 {
            bytes[0] = b'D';
            bytes[1] = b'X';
            bytes[2] = 1;
            bytes[3] = (unit_interval(mix64(case ^ 5)) * 16.0) as u8;
        }
        let _ = CompressedBlob::from_bytes(&bytes); // must not panic
    }
}
