//! Integration tests for the FASTQ / read-set path (G-SQZ) and the
//! vertical reference path — the two data flows beyond single-sequence
//! horizontal compression.

use dnacomp::algos::refcomp::{ReferenceCompressor, ReferenceIndex};
use dnacomp::algos::GSqz;
use dnacomp::prelude::*;
use dnacomp::seq::fastq::{parse_fastq, synth_reads, write_fastq};

#[test]
fn fastq_text_to_gsqz_and_back() {
    // Full path: synthesise → FASTQ text → parse → G-SQZ → decode →
    // FASTQ text must match byte for byte.
    let genome = GenomeModel::default().generate(30_000, 11);
    let reads = synth_reads(&genome, 300, 120, 5);
    let text = write_fastq(&reads);
    let parsed = parse_fastq(&text).unwrap();
    assert_eq!(parsed, reads);
    let packed = GSqz.compress(&parsed).unwrap();
    let decoded = GSqz.decompress(&packed).unwrap();
    assert_eq!(write_fastq(&decoded), text);
    // And it genuinely compresses.
    assert!(packed.len() < text.len());
}

#[test]
fn gsqz_is_order_preserving() {
    // The paper highlights that G-SQZ compresses "without altering the
    // sequence" — record order and ids must survive.
    let genome = GenomeModel::default().generate(10_000, 3);
    let reads = synth_reads(&genome, 50, 80, 9);
    let decoded = GSqz.decompress(&GSqz.compress(&reads).unwrap()).unwrap();
    for (a, b) in reads.iter().zip(&decoded) {
        assert_eq!(a.id, b.id);
    }
}

#[test]
fn reference_path_beats_horizontal_on_same_species() {
    let reference = GenomeModel::default().generate(100_000, 21);
    // A 99.9 %-identical sample.
    let target = {
        let mut b = reference.unpack();
        for i in (500..b.len()).step_by(1000) {
            b[i] = b[i].complement();
        }
        PackedSeq::from(b.as_slice())
    };
    let rc = ReferenceCompressor::default();
    let index = ReferenceIndex::build(&reference, rc.block);
    let vertical = rc.compress(&index, &target).unwrap();
    assert_eq!(rc.decompress(&index, &vertical).unwrap(), target);
    let horizontal = Dnax::default().compress(&target).unwrap();
    assert!(
        vertical.total_bytes() * 5 < horizontal.total_bytes(),
        "vertical {} vs horizontal {}",
        vertical.total_bytes(),
        horizontal.total_bytes()
    );
}

#[test]
fn reference_blobs_are_not_accepted_by_horizontal_decoders() {
    let reference = GenomeModel::default().generate(20_000, 7);
    let rc = ReferenceCompressor::default();
    let index = ReferenceIndex::build(&reference, rc.block);
    let blob = rc.compress(&index, &reference).unwrap();
    for c in dnacomp::algos::all_algorithms() {
        assert!(
            c.decompress(&blob).is_err(),
            "{} accepted a Reference blob",
            c.name()
        );
    }
}
