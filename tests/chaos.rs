//! Chaos suite: fault-rate sweeps over the context grid.
//!
//! The resilience layer's contract, exercised end to end: under any
//! injected fault schedule an exchange either delivers a **byte-identical
//! roundtrip** (verified here independently, by re-downloading the stored
//! blob and decompressing it) or returns a **typed [`ExchangeError`]** —
//! never a silently corrupted sequence. Fault-free runs must be
//! overhead-free: zero retries, zero wasted milliseconds.

use dnacomp::algos::compressor_for;
use dnacomp::cloud::{
    context_grid, BlobHandle, BlobStore, CloudSim, ExchangeError, FaultPlan,
};
use dnacomp::prelude::*;

/// A sim with tiny blocks so even small blobs span many blocks (the
/// resilience layer is block-granular) and the given chaos plan.
fn chaos_sim(seed: u64, rate: f64) -> CloudSim {
    CloudSim {
        store: BlobStore::with_block_bytes(512),
        faults: FaultPlan::uniform(seed, rate),
        ..CloudSim::default()
    }
}

/// Independently verify what the exchange stored: re-download the blob,
/// parse and decompress it, and compare against the original sequence.
fn verify_stored(sim: &CloudSim, alg: Algorithm, file: &str, seq: &PackedSeq) {
    let handle = BlobHandle {
        container: "sequences".to_owned(),
        name: format!("{file}.{}.dx", alg.name().to_ascii_lowercase()),
    };
    let bytes = sim.store.download(&handle).expect("blob not stored");
    let blob = CompressedBlob::from_bytes(&bytes).expect("stored blob unparseable");
    let decoded = compressor_for(alg)
        .decompress(&blob)
        .expect("stored blob undecodable");
    assert_eq!(&decoded, seq, "stored blob decodes to a different sequence");
}

#[test]
fn fault_rate_sweep_across_the_grid_never_silently_corrupts() {
    let algs = [
        Algorithm::Dnax,
        Algorithm::GenCompress,
        Algorithm::Gzip,
        Algorithm::Ctw,
    ];
    let grid = context_grid();
    // Every other grid point: 16 distinct contexts (≥ 8 required).
    let contexts: Vec<_> = grid.iter().step_by(2).collect();
    assert!(contexts.len() >= 8);
    for (ri, rate) in [0.0f64, 0.05, 0.25].into_iter().enumerate() {
        let mut successes = 0u32;
        let mut typed_failures = 0u32;
        let mut total_retries = 0u32;
        let mut total_wasted = 0.0f64;
        for (i, ctx) in contexts.iter().enumerate() {
            let alg = algs[i % algs.len()];
            let seq = GenomeModel::default().generate(6_000 + 500 * i, i as u64);
            let file = format!("chaos_r{ri}_c{i}");
            let mut sim = chaos_sim(0xC0FFEE + (ri * 100 + i) as u64, rate);
            match sim.exchange(ctx, compressor_for(alg).as_ref(), &file, &seq) {
                Ok(report) => {
                    successes += 1;
                    total_retries += report.retries;
                    total_wasted += report.wasted_ms;
                    assert_eq!(report.algorithm, alg);
                    assert_eq!(report.original_len, seq.len());
                    // The report's waste is real phase time, not extra.
                    assert!(report.wasted_ms <= report.upload_ms + report.download_ms);
                    if rate == 0.0 {
                        assert_eq!(report.retries, 0, "retries under zero faults");
                        assert_eq!(report.wasted_ms, 0.0, "waste under zero faults");
                        assert_eq!(report.integrity_failures, 0);
                    }
                    verify_stored(&sim, alg, &file, &seq);
                }
                Err(e) => {
                    typed_failures += 1;
                    // Typed, displayable, and never a codec lie: the
                    // pipeline refused rather than delivered bad bytes.
                    assert!(!e.to_string().is_empty());
                    assert!(
                        !matches!(e, ExchangeError::Codec(_)),
                        "faults must surface as transfer errors, got {e:?}"
                    );
                }
            }
        }
        assert!(successes > 0, "no exchange survived rate {rate}");
        if rate == 0.0 {
            assert_eq!(typed_failures, 0, "failures without faults");
            assert_eq!(total_retries, 0);
            assert_eq!(total_wasted, 0.0);
        } else if rate == 0.25 {
            // Heavy chaos must visibly cost retries and time.
            assert!(total_retries > 0, "no retries at rate 0.25");
            assert!(total_wasted > 0.0, "no wasted ms at rate 0.25");
        }
    }
}

#[test]
fn zero_rate_plan_is_identical_to_no_plan() {
    let seq = GenomeModel::default().generate(20_000, 7);
    let ctx = &context_grid()[5];
    let run = |faults: FaultPlan| {
        let mut sim = CloudSim {
            store: BlobStore::with_block_bytes(512),
            faults,
            ..CloudSim::default()
        };
        sim.exchange(ctx, &Dnax::default(), "f", &seq).unwrap()
    };
    // A seeded plan whose rates are all zero changes nothing at all.
    assert_eq!(run(FaultPlan::none()), run(FaultPlan::uniform(123, 0.0)));
}

#[test]
fn chaos_is_reproducible_per_seed() {
    let seq = GenomeModel::default().generate(15_000, 11);
    let ctx = &context_grid()[9];
    let run = || {
        let mut sim = chaos_sim(31337, 0.25);
        sim.exchange(ctx, &GenCompress::default(), "f", &seq)
    };
    assert_eq!(run(), run());
    // A different seed gives a different fault history (almost surely a
    // different report or outcome).
    let other = {
        let mut sim = chaos_sim(31338, 0.25);
        sim.exchange(ctx, &GenCompress::default(), "f", &seq)
    };
    assert_ne!(run(), other);
}

#[test]
fn resilient_framework_survives_chaos_or_fails_typed() {
    use dnacomp::core::LabeledRow;
    let rows: Vec<LabeledRow> = (0..60)
        .map(|i| LabeledRow {
            file: format!("f{i}"),
            file_bytes: 1_000 + i * 10_000,
            ram_mb: 2048,
            cpu_mhz: 2393,
            bandwidth_mbps: 2.0,
            winner: if i < 30 {
                Algorithm::GenCompress
            } else {
                Algorithm::Dnax
            },
            score: 0.0,
        })
        .collect();
    let mut fw = ContextAwareFramework::train(&rows, TreeMethod::Cart);
    let seq = GenomeModel::default().generate(25_000, 5);
    let ctx = Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: seq.len() as u64,
    };
    let mut degrades = 0u32;
    let mut successes = 0u32;
    for seed in 0..30u64 {
        let mut sim = chaos_sim(seed, 0.35);
        match fw.exchange_resilient(&mut sim, &ctx, "f", &seq) {
            Ok((alg, report)) => {
                successes += 1;
                assert_eq!(report.algorithm, alg);
                if !report.degraded_from.is_empty() {
                    degrades += 1;
                    assert!(!report.degraded_from.contains(&alg));
                }
                verify_stored(&sim, alg, "f", &seq);
            }
            Err(e) => assert!(!e.to_string().is_empty()),
        }
    }
    assert!(successes > 0, "the ladder never succeeded under chaos");
    assert!(degrades > 0, "the ladder never had to degrade");
}
