//! Differential and compatibility suite for the speed tier.
//!
//! Three promises, each checked against an independent oracle:
//!
//! 1. **SIMD kernels are invisible** — the runtime-dispatched 2-bit
//!    pack/unpack and match-extension kernels produce byte-identical
//!    results to the bytewise reference loops at every length and
//!    every slice alignment, on whatever dispatch tier this host (or a
//!    `DNACOMP_FORCE_SCALAR=1` run) selects.
//! 2. **The entropy backends cross-decode** — blobs and frames written
//!    by the legacy arithmetic tier (v1) and the rANS tier (v2) both
//!    decode through the *default* compressors at every frame-matrix
//!    block size; the decoder follows the container version, never the
//!    instance configuration.
//! 3. **Old bytes stay decodable** — checked-in v1 container images
//!    (hex fixtures, never regenerated) decode bit-exactly. A failure
//!    here means the legacy decode path broke, not that the fixtures
//!    are stale.

use dnacomp::algos::{compressor_for, Algorithm, CompressedBlob, Compressor, Ctw, CtwLz, XmLite};
use dnacomp::codec::arith::EntropyBackend;
use dnacomp::codec::repeats::{RepeatConfig, RepeatFinder};
use dnacomp::seq::gen::GenomeModel;
use dnacomp::seq::{
    common_prefix_len, common_prefix_len_bytewise, pack_2bit, pack_2bit_bytewise, unpack_2bit,
    unpack_2bit_bytewise, Base, CpuFeatures,
};

/// Deterministic 2-bit code stream with enough structure to exercise
/// every lane of a vector kernel.
fn codes(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 2654435761) >> 7) as u8 & 3).collect()
}

#[test]
fn pack_unpack_match_bytewise_oracle_at_every_length_and_alignment() {
    eprintln!("dispatch: {}", CpuFeatures::get().summary());
    let all = codes(4096 + 64);
    // Every length through 512 crosses all the vector-width remainders;
    // the sparse tail hits block boundaries of every kernel tier.
    let lens: Vec<usize> = (0..=512)
        .chain([1000, 1023, 1024, 1025, 2048, 3333, 4095, 4096])
        .collect();
    for &len in &lens {
        for offset in 0..8 {
            let slice = &all[offset..offset + len];
            let packed = pack_2bit(slice);
            assert_eq!(
                packed,
                pack_2bit_bytewise(slice),
                "pack diverged at len {len} offset {offset}"
            );
            assert_eq!(
                unpack_2bit(&packed, len),
                unpack_2bit_bytewise(&packed, len),
                "unpack diverged at len {len} offset {offset}"
            );
            assert_eq!(
                unpack_2bit(&packed, len),
                slice,
                "pack/unpack not inverse at len {len} offset {offset}"
            );
        }
    }
}

#[test]
fn prefix_kernel_matches_bytewise_oracle_at_every_mismatch_position() {
    let a: Vec<Base> = codes(256).iter().map(|&c| Base::from_code(c)).collect();
    // Mismatch at every position, compared at several slice alignments:
    // the SIMD kernel must report the exact same prefix length as the
    // scalar loop whether the difference lands mid-vector or in the tail.
    for p in 0..a.len() {
        let mut b = a.clone();
        b[p] = Base::from_code(b[p].code() ^ 1);
        for offset in 0..4 {
            let (x, y) = (&a[offset..], &b[offset..]);
            assert_eq!(
                common_prefix_len(x, y),
                common_prefix_len_bytewise(x, y),
                "prefix diverged: mismatch at {p}, offset {offset}"
            );
        }
    }
    // Equal inputs of every length 0..=130: the full-scan path.
    for len in 0..=130 {
        let x = &a[..len];
        assert_eq!(common_prefix_len(x, x), len, "full scan at len {len}");
        assert_eq!(common_prefix_len_bytewise(x, x), len);
    }
}

#[test]
fn match_finder_results_verify_against_the_text_itself() {
    // Whatever the extension kernel did, a reported forward match must
    // be (a) a real byte-for-byte repeat and (b) maximal — one more
    // base either runs off the end or mismatches.
    let text = GenomeModel::default().generate(6_000, 99).unpack();
    let mut finder = RepeatFinder::new(
        &text,
        RepeatConfig {
            search_revcomp: false,
            ..RepeatConfig::default()
        },
    );
    let mut found = 0usize;
    for dst in 0..text.len() {
        finder.advance(dst);
        if let Some(m) = finder.find(dst) {
            assert!(m.src < dst, "match source at/after query");
            assert_eq!(
                &text[m.src..m.src + m.len],
                &text[dst..dst + m.len],
                "reported match is not a repeat (src {}, dst {dst})",
                m.src
            );
            let maximal = dst + m.len == text.len()
                || text[m.src + m.len] != text[dst + m.len];
            assert!(maximal, "match at dst {dst} undersold by the kernel");
            found += 1;
        }
    }
    assert!(found > 100, "only {found} matches on repetitive genomic text");
}

/// The frame-matrix block sizes: degenerate single-base blocks, sizes
/// straddling the sequence length, and power-of-two interiors.
const BLOCK_SIZES: [usize; 7] = [1, 3, 7, 64, 256, 1000, 4096];

#[test]
fn both_backends_cross_decode_at_every_frame_block_size() {
    let seq = GenomeModel::default().generate(1_000, 55);
    let tiers: [(Box<dyn Compressor>, Box<dyn Compressor>); 3] = [
        (
            Box::new(Ctw::with_backend(EntropyBackend::Arith)),
            Box::new(Ctw::default()),
        ),
        (
            Box::new(CtwLz::with_backend(EntropyBackend::Arith)),
            Box::new(CtwLz::default()),
        ),
        (
            Box::new(XmLite::with_backend(EntropyBackend::Arith)),
            Box::new(XmLite::default()),
        ),
    ];
    for (legacy, fast) in &tiers {
        for bs in BLOCK_SIZES {
            // v1 frame decoded by the default (rANS-configured) tier and
            // v2 frame decoded through the same version-dispatching path:
            // the decoder follows the container, not the instance.
            let v1 = dnacomp::algos::frame::compress_serial(legacy.as_ref(), &seq, bs).unwrap();
            let v2 = dnacomp::algos::frame::compress_serial(fast.as_ref(), &seq, bs).unwrap();
            assert_eq!(
                dnacomp::algos::frame::decompress_serial(&v1).unwrap(),
                seq,
                "{}: v1 frame at block size {bs}",
                legacy.algorithm()
            );
            assert_eq!(
                dnacomp::algos::frame::decompress_serial(&v2).unwrap(),
                seq,
                "{}: v2 frame at block size {bs}",
                fast.algorithm()
            );
        }
        // Blob-level cross-decode in both directions.
        let v1 = legacy.compress(&seq).unwrap();
        let v2 = fast.compress(&seq).unwrap();
        assert_eq!(v1.version, 1);
        assert_eq!(v2.version, 2);
        assert_eq!(fast.decompress(&v1).unwrap(), seq);
        assert_eq!(legacy.decompress(&v2).unwrap(), seq);
    }
}

// Generated by examples/speed_tier_fixtures.rs — seed 2024, 300 bases.
const CTW_V1: &str = "44580101ac02658c75a9c5a96a0e88c1d981992bf86d63fef86a6f1cc08f5cba15fd9e74eb7bf524a3b0f0f7cd7451f37a962079142502c1bf053694321b7720c4df61bd1aba91709dbdb142f407a3f07ceaef700b9a98";
const CTWLZ_V1: &str = "4458010cac02658c75a9c5a96a0e0b016607405903284009902188c1d981992bf86d63fef86a6f1cc08f5cba15fd9e74e992852a18773fbcd5a38b15d2ca22e7ef8d8caf7092";
const XM_V1: &str = "44580107ac02658c75a9c5a96a0e8c2e31e96b8418528b2a775e6eff4db1593cfeae5ea5c358a79c7fd158173fdf96b25f0f4914917e463ea61ff3fe7ec10ccec0589a1f6d39925a4f3cfb9b200c02";
const SEQUITUR_V1: &str = "4458010bac02658c75a9c5a96a0e17810105a3533f2f67a424064b698d15d328a1e6d18d6c6f05d8c82cb9dce5f1136abfcd37e59e16c7419b6eaf1b527654a0a93160b260d13f8fc8ee0ae3daecdbf60048f42eb00130b07058c6675bb9ef774880a428385a0dd66c46439e7143a112310b47cd135d74dc92ec148d34bb1008945a76ed92737c";

fn unhex(s: &str) -> Vec<u8> {
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
        .collect()
}

#[test]
fn checked_in_v1_blobs_decode_bit_exact_through_default_compressors() {
    let expected = GenomeModel::default().generate(300, 2024);
    for (name, hex, alg) in [
        ("CTW", CTW_V1, Algorithm::Ctw),
        ("CTW+LZ", CTWLZ_V1, Algorithm::CtwLz),
        ("XM-lite", XM_V1, Algorithm::XmLite),
        ("DNASequitur", SEQUITUR_V1, Algorithm::DnaSequitur),
    ] {
        let blob = CompressedBlob::from_bytes(&unhex(hex))
            .unwrap_or_else(|e| panic!("{name}: fixture container no longer parses: {e}"));
        assert_eq!(blob.version, 1, "{name}: fixture is not a v1 container");
        assert_eq!(blob.algorithm, alg, "{name}: fixture algorithm tag");
        let decoded = compressor_for(alg)
            .decompress(&blob)
            .unwrap_or_else(|e| panic!("{name}: v1 fixture no longer decodes: {e}"));
        assert_eq!(decoded, expected, "{name}: v1 fixture decoded to different bases");
    }
}
