//! Workspace-level property tests: compressor roundtrips over arbitrary
//! and structured inputs, framework totality, labeler invariants, and the
//! retry policy's backoff guarantees.

use dnacomp::algos::{all_algorithms, Algorithm};
use dnacomp::cloud::RetryPolicy;
use dnacomp::core::{label_rows, ExperimentRow, WeightVector};
use dnacomp::ml::TreeMethod;
use dnacomp::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_algorithms_roundtrip_arbitrary(s in "[ACGT]{0,1500}") {
        let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
        for c in all_algorithms() {
            let blob = c.compress(&seq).unwrap();
            prop_assert_eq!(c.decompress(&blob).unwrap(), seq.clone(), "{}", c.name());
        }
    }

    #[test]
    fn all_algorithms_roundtrip_structured(seed in any::<u64>(), len in 64usize..4000) {
        let seq = GenomeModel::highly_repetitive().generate(len, seed);
        for c in all_algorithms() {
            let blob = c.compress(&seq).unwrap();
            prop_assert_eq!(c.decompress(&blob).unwrap(), seq.clone(), "{}", c.name());
        }
    }

    #[test]
    fn framework_decisions_are_total(
        ram in 128u32..16_384,
        cpu in 800u32..4_000,
        bw in 0.1f64..100.0,
        kb in 0.1f64..50_000.0,
    ) {
        // A framework trained on any labelled data must return *some*
        // paper algorithm for any context, however far outside the
        // training distribution.
        let rows: Vec<dnacomp::core::LabeledRow> = (0..40)
            .map(|i| dnacomp::core::LabeledRow {
                file: format!("f{i}"),
                file_bytes: 1_000 + i * 7_000,
                ram_mb: 2048,
                cpu_mhz: 2000,
                bandwidth_mbps: 2.0,
                winner: if i < 20 { Algorithm::GenCompress } else { Algorithm::Dnax },
                score: 0.0,
            })
            .collect();
        for method in [TreeMethod::Cart, TreeMethod::Chaid] {
            let fw = dnacomp::core::ContextAwareFramework::train(&rows, method);
            let alg = fw.decide(&dnacomp::core::Context {
                ram_mb: ram,
                cpu_mhz: cpu,
                bandwidth_mbps: bw,
                file_bytes: (kb * 1024.0) as u64,
            });
            prop_assert!(Algorithm::PAPER.contains(&alg) || Algorithm::ALL.contains(&alg));
        }
    }

    #[test]
    fn labeler_winner_is_argmin_of_pure_time(
        comp in prop::collection::vec(1.0f64..10_000.0, 4),
        up in prop::collection::vec(1.0f64..5_000.0, 4),
    ) {
        let algs = Algorithm::PAPER;
        let rows: Vec<ExperimentRow> = algs
            .iter()
            .zip(comp.iter().zip(&up))
            .map(|(&a, (&c, &u))| ExperimentRow {
                file: "f".into(),
                file_bytes: 1000,
                ram_mb: 2048,
                cpu_mhz: 2000,
                bandwidth_mbps: 2.0,
                algorithm: a,
                compressed_bytes: 100,
                compress_ms: c,
                decompress_ms: 10.0,
                upload_ms: u,
                download_ms: 5.0,
                ram_used_bytes: 1,
            })
            .collect();
        let labeled = label_rows(&rows, &WeightVector::time_only());
        prop_assert_eq!(labeled.len(), 1);
        let expect = rows
            .iter()
            .min_by(|a, b| {
                (a.compress_ms + a.upload_ms).total_cmp(&(b.compress_ms + b.upload_ms))
            })
            .unwrap()
            .algorithm;
        prop_assert_eq!(labeled[0].winner, expect);
    }

    #[test]
    fn blob_serialisation_roundtrips(payload in prop::collection::vec(any::<u8>(), 0..300), s in "[ACGT]{1,64}") {
        let seq = PackedSeq::from_ascii(s.as_bytes()).unwrap();
        let blob = dnacomp::algos::CompressedBlob::new(Algorithm::Ctw, &seq, payload);
        let bytes = blob.to_bytes();
        prop_assert_eq!(dnacomp::algos::CompressedBlob::from_bytes(&bytes).unwrap(), blob);
    }

    #[test]
    fn parser_never_accepts_wrong_magic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        if bytes.len() < 2 || bytes[0..2] != *b"DX" {
            prop_assert!(dnacomp::algos::CompressedBlob::from_bytes(&bytes).is_err());
        }
    }
}

// Backoff guarantees of the retry policy, over arbitrary seeds, operation
// keys and budgets (the invariants the resilient exchange relies on).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn backoff_delays_are_monotone_nondecreasing(seed in any::<u64>(), key in any::<u64>()) {
        let p = RetryPolicy {
            seed,
            max_attempts: 10,
            budget_ms: 1e12, // budget never truncates here
            ..RetryPolicy::default()
        };
        let s = p.schedule(key);
        prop_assert_eq!(s.len(), 9);
        for w in s.windows(2) {
            prop_assert!(w[1] >= w[0], "schedule not monotone: {:?}", s);
        }
    }

    #[test]
    fn backoff_jitter_is_deterministic_for_a_fixed_seed(seed in any::<u64>(), key in any::<u64>()) {
        let p = RetryPolicy { seed, ..RetryPolicy::default() };
        let twin = RetryPolicy { seed, ..RetryPolicy::default() };
        prop_assert_eq!(p.schedule(key), twin.schedule(key));
        for retry in 1..4u32 {
            prop_assert_eq!(p.raw_delay_ms(key, retry), twin.raw_delay_ms(key, retry));
        }
    }

    #[test]
    fn backoff_total_never_exceeds_budget(
        seed in any::<u64>(),
        key in any::<u64>(),
        budget in 0.0f64..5_000.0,
        attempts in 1u32..12,
    ) {
        let p = RetryPolicy {
            seed,
            max_attempts: attempts,
            budget_ms: budget,
            ..RetryPolicy::default()
        };
        let s = p.schedule(key);
        prop_assert!(s.len() < attempts as usize);
        let total: f64 = s.iter().sum();
        prop_assert!(total <= budget, "total {} over budget {}", total, budget);
    }
}
