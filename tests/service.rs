//! Integration suite for the concurrent compression service
//! (`crates/server`): end-to-end submission → worker pool → response,
//! concurrency stress with injected faults, determinism, backpressure,
//! deadlines, cache effectiveness and throughput scaling.

use dnacomp::cloud::{context_grid, FaultPlan};
use dnacomp::core::Context;
use dnacomp::seq::gen::GenomeModel;
use dnacomp::seq::PackedSeq;
use dnacomp::server::{
    makespan_ms, run_bench, synthetic_framework, BenchConfig, CompressRequest,
    CompressionService, JobError, Priority, ServiceConfig, SubmitError,
};
use std::time::Duration;

/// A deterministic mixed workload: `n` unique small files spread over
/// the context grid, cycling priorities.
fn stress_jobs(n: usize, exchange: bool) -> Vec<CompressRequest> {
    let contexts = context_grid();
    (0..n)
        .map(|i| {
            let len = 1_000 + (i % 13) * 250;
            let seq = GenomeModel::default().generate(len, i as u64);
            let client = &contexts[i % contexts.len()];
            let mut req = CompressRequest::new(
                format!("stress_{i:04}"),
                seq,
                Context::new(client, len as u64),
            );
            req.priority = Priority::ALL[i % 3];
            req.exchange = exchange;
            req
        })
        .collect()
}

/// Order-independent summary of one run's outcomes, for determinism
/// comparison. Excludes worker id, wall time and cache-hit flags —
/// those legitimately vary with scheduling.
fn run_summary(jobs: &[CompressRequest], config: ServiceConfig) -> Vec<String> {
    let service = CompressionService::start(synthetic_framework(7), config);
    let mut tickets = Vec::with_capacity(jobs.len());
    for job in jobs {
        loop {
            match service.submit(job.clone()) {
                Ok(t) => {
                    tickets.push(t);
                    break;
                }
                Err(SubmitError::QueueFull) => std::thread::yield_now(),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        }
    }
    let mut lines: Vec<String> = tickets
        .into_iter()
        .map(|t| match t.wait() {
            Ok(r) => format!(
                "{} ok alg={} bytes={} sim_ms={} retries={} degraded={:?}",
                r.file,
                r.algorithm,
                r.compressed_bytes,
                r.sim_ms.to_bits(),
                r.retries,
                r.degraded_from
            ),
            Err(JobError::Exchange(e)) => format!("err {e}"),
            Err(other) => format!("unexpected {other}"),
        })
        .collect();
    let snapshot = service.shutdown();
    // Conservation: every accepted job resolved exactly one way.
    assert_eq!(snapshot.accepted as usize, jobs.len());
    assert_eq!(
        snapshot.completed
            + snapshot.failed
            + snapshot.expired
            + snapshot.jobs_panicked
            + snapshot.jobs_quarantined
            + snapshot.jobs_crashed,
        snapshot.accepted,
        "jobs leaked: {snapshot:?}"
    );
    assert_eq!(snapshot.queue_depth, 0);
    assert_eq!(
        snapshot.cache_hits + snapshot.cache_misses,
        snapshot.completed + snapshot.failed,
        "every executed job consults the cache exactly once"
    );
    lines.sort();
    lines
}

/// The headline stress test: ≥ 8 workers × ≥ 500 jobs, mixed
/// priorities, injected faults — no deadlock, no lost jobs, and
/// bit-identical totals across two fully independent runs.
#[test]
fn stress_8_workers_500_jobs_faults_deterministic_no_losses() {
    let jobs = stress_jobs(520, true);
    let config = || ServiceConfig {
        workers: 8,
        queue_capacity: 64, // force backpressure churn while submitting
        faults: FaultPlan::uniform(99, 0.05),
        block_bytes: Some(512),
        // Disable breaker skipping so each job's outcome is a pure
        // function of the job, independent of per-worker history.
        breaker_threshold: u32::MAX,
        ..ServiceConfig::default()
    };
    let first = run_summary(&jobs, config());
    assert_eq!(first.len(), jobs.len());
    // Faults at 5 % must not take down healthy jobs wholesale: the
    // ladder (chosen → Gzip → Raw) absorbs nearly everything.
    let failures = first.iter().filter(|l| l.starts_with("err")).count();
    assert!(
        failures * 10 < jobs.len(),
        "{failures} failures out of {} jobs",
        jobs.len()
    );
    let second = run_summary(&jobs, config());
    assert_eq!(first, second, "totals diverged across identical runs");
}

#[test]
fn shutdown_drains_everything_that_was_accepted() {
    let jobs = stress_jobs(40, false);
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| service.submit(j.clone()).expect("capacity 256 > 40"))
        .collect();
    // Shut down immediately: accepted jobs must still all resolve.
    let snapshot = service.shutdown();
    assert_eq!(snapshot.accepted, 40);
    assert_eq!(snapshot.completed + snapshot.failed, 40);
    for t in tickets {
        assert!(
            !matches!(t.wait(), Err(JobError::WorkerGone)),
            "a ticket was abandoned"
        );
    }
}

#[test]
fn backpressure_rejects_submissions_when_full() {
    // One worker pinned on a slow job + capacity-1 queue: the third
    // submission must bounce.
    let slow = GenomeModel::default().generate(300_000, 1);
    let ctx = Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: slow.len() as u64,
    };
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 1,
            queue_capacity: 1,
            ..ServiceConfig::default()
        },
    );
    let t1 = service
        .submit(CompressRequest::new("slow", slow.clone(), ctx.clone()))
        .unwrap();
    // Give the worker a moment to pick up the slow job, then fill the
    // queue's single slot.
    std::thread::sleep(Duration::from_millis(30));
    let small = GenomeModel::default().generate(2_000, 2);
    let t2 = service.submit(CompressRequest::new("q1", small.clone(), ctx.clone()));
    let mut saw_rejection = false;
    for i in 0..50 {
        match service.submit(CompressRequest::new(
            format!("spill{i}"),
            small.clone(),
            ctx.clone(),
        )) {
            Err(SubmitError::QueueFull) => {
                saw_rejection = true;
                break;
            }
            Ok(_) | Err(_) => continue,
        }
    }
    assert!(saw_rejection, "queue never pushed back");
    assert!(t1.wait().is_ok());
    if let Ok(t2) = t2 {
        let _ = t2.wait();
    }
    let snapshot = service.shutdown();
    assert!(snapshot.rejected_full >= 1);
    assert_eq!(
        snapshot.completed + snapshot.failed + snapshot.expired,
        snapshot.accepted
    );
}

#[test]
fn deadline_expired_jobs_are_answered_not_dropped() {
    // Pin the single worker on a long job so queued jobs provably wait.
    let slow = GenomeModel::default().generate(300_000, 3);
    let ctx = Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: slow.len() as u64,
    };
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let t_slow = service
        .submit(CompressRequest::new("slow", slow, ctx.clone()))
        .unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let small = GenomeModel::default().generate(2_000, 4);
    let mut doomed = CompressRequest::new("doomed", small, ctx);
    doomed.deadline = Some(Duration::ZERO);
    let t_doomed = service.submit(doomed).unwrap();
    assert!(t_slow.wait().is_ok());
    match t_doomed.wait() {
        Err(JobError::Expired { waited_ms }) => assert!(waited_ms > 0.0),
        other => panic!("expected Expired, got {other:?}"),
    }
    let snapshot = service.shutdown();
    assert_eq!(snapshot.expired, 1);
    assert_eq!(snapshot.completed, 1);
}

#[test]
fn repeated_contexts_hit_the_decision_cache_over_90_percent() {
    // The bench workload replays every (file, context) pair three
    // times: after the first pass warms the cache, the rest must be
    // nearly all hits.
    let cfg = BenchConfig {
        files: 30,
        contexts: 8,
        repeats: 3,
        worker_counts: vec![4],
        ..BenchConfig::default()
    };
    let report = run_bench(&cfg);
    let point = &report.sweep[0];
    assert_eq!(point.metrics.accepted as usize, report.jobs);
    assert!(
        point.cache_hit_rate > 0.9,
        "cache hit rate {:.3} ≤ 0.9",
        point.cache_hit_rate
    );
    assert_eq!(point.completed as usize, report.jobs);
}

#[test]
fn eight_workers_scale_simulated_throughput_at_least_4x() {
    let cfg = BenchConfig {
        files: 30,
        contexts: 8,
        repeats: 2,
        worker_counts: vec![1, 8],
        ..BenchConfig::default()
    };
    let report = run_bench(&cfg);
    assert_eq!(report.sweep.len(), 2);
    let one = &report.sweep[0];
    let eight = &report.sweep[1];
    assert_eq!(one.workers, 1);
    assert_eq!(eight.workers, 8);
    assert!(
        eight.speedup_vs_one >= 4.0,
        "8 workers only {:.2}x over 1",
        eight.speedup_vs_one
    );
    // Simulated costs are deterministic: both sweeps priced the same
    // total work, so makespans obey the scheduling bound exactly.
    assert!(eight.sim_makespan_ms <= one.sim_makespan_ms / 4.0);
}

#[test]
fn empty_and_degenerate_requests_roundtrip() {
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let ctx = Context {
        ram_mb: 1024,
        cpu_mhz: 1600,
        bandwidth_mbps: 0.5,
        file_bytes: 0,
    };
    // Zero-length sequence through the full exchange path (PR 1's
    // zero-byte-blob invariant, now under the service).
    let mut empty = CompressRequest::new("empty", PackedSeq::new(), ctx.clone());
    empty.exchange = true;
    let t = service.submit(empty).unwrap();
    let resp = t.wait().expect("empty sequence must roundtrip");
    assert_eq!(resp.original_len, 0);
    // One-base sequence, compress-only.
    let one = GenomeModel::default().generate(1, 9);
    let t = service.submit(CompressRequest::new("one", one, ctx)).unwrap();
    assert!(t.wait().is_ok());
    service.shutdown();
}

#[test]
fn makespan_model_matches_hand_schedule() {
    // Earliest-free-lane on 2 lanes, submission order [5,3,2,4]:
    // lane0 gets 5, lane1 gets 3, the 2 joins lane1 (free at 3),
    // the 4 joins lane0 (free at 5) → lanes finish at (9, 5).
    assert!((makespan_ms(&[5.0, 3.0, 2.0, 4.0], 2) - 9.0).abs() < 1e-12);
}
