//! Cross-crate roundtrip guarantees: every compressor must reproduce
//! every kind of workload exactly, reject foreign blobs, and fail loudly
//! (never silently) on damaged containers.

use dnacomp::algos::{all_algorithms, CompressedBlob};
use dnacomp::prelude::*;

fn workloads() -> Vec<(&'static str, PackedSeq)> {
    let mut v = vec![
        ("empty", PackedSeq::new()),
        ("single", PackedSeq::from_ascii(b"G").unwrap()),
        ("tiny", PackedSeq::from_ascii(b"ACGTACGTAC").unwrap()),
        (
            "homopolymer",
            PackedSeq::from_ascii("A".repeat(5_000).as_bytes()).unwrap(),
        ),
        (
            "period3",
            PackedSeq::from_ascii("ACG".repeat(4_000).as_bytes()).unwrap(),
        ),
        ("bacterial", GenomeModel::default().generate(30_000, 1)),
        (
            "repetitive",
            GenomeModel::highly_repetitive().generate(30_000, 2),
        ),
        ("random", GenomeModel::random_only(0.5).generate(30_000, 3)),
        ("gc_rich", GenomeModel::random_only(0.9).generate(10_000, 4)),
        ("at_rich", GenomeModel::random_only(0.1).generate(10_000, 5)),
    ];
    // A sequence with a planted reverse-complement arm (palindrome-ish).
    let fwd = GenomeModel::random_only(0.5).generate(4_000, 6);
    let mut arm = fwd.to_ascii();
    arm.push_str(&fwd.reverse_complement().to_ascii());
    v.push((
        "revcomp_arm",
        PackedSeq::from_ascii(arm.as_bytes()).unwrap(),
    ));
    v
}

#[test]
fn every_algorithm_roundtrips_every_workload() {
    for compressor in all_algorithms() {
        for (name, seq) in workloads() {
            let blob = compressor
                .compress(&seq)
                .unwrap_or_else(|e| panic!("{} failed on {name}: {e}", compressor.name()));
            let back = compressor
                .decompress(&blob)
                .unwrap_or_else(|e| panic!("{} failed to decode {name}: {e}", compressor.name()));
            assert_eq!(back, seq, "{} mismatched on {name}", compressor.name());
        }
    }
}

#[test]
fn wire_format_roundtrips() {
    let seq = GenomeModel::default().generate(10_000, 9);
    for compressor in all_algorithms() {
        let blob = compressor.compress(&seq).unwrap();
        let bytes = blob.to_bytes();
        let parsed = CompressedBlob::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, blob);
        assert_eq!(compressor.decompress(&parsed).unwrap(), seq);
    }
}

#[test]
fn every_decoder_rejects_every_other_algorithms_blob() {
    let seq = GenomeModel::default().generate(2_000, 10);
    let compressors = all_algorithms();
    let blobs: Vec<CompressedBlob> =
        compressors.iter().map(|c| c.compress(&seq).unwrap()).collect();
    for (i, dec) in compressors.iter().enumerate() {
        for (j, blob) in blobs.iter().enumerate() {
            if i == j {
                assert!(dec.decompress(blob).is_ok());
            } else {
                assert!(
                    dec.decompress(blob).is_err(),
                    "{} accepted a {} blob",
                    dec.name(),
                    compressors[j].name()
                );
            }
        }
    }
}

#[test]
fn corruption_is_detected_or_harmless_everywhere() {
    let seq = GenomeModel::default().generate(4_000, 11);
    for compressor in all_algorithms() {
        let blob = compressor.compress(&seq).unwrap();
        // Walk a sample of byte positions; every flip must either error
        // out or decode to the exact original (inert padding bits).
        let step = (blob.payload.len() / 24).max(1);
        for at in (0..blob.payload.len()).step_by(step) {
            let mut bad = blob.clone();
            bad.payload[at] ^= 0x55;
            if let Ok(back) = compressor.decompress(&bad) { assert_eq!(
                back,
                seq,
                "{} silently produced wrong data (byte {at})",
                compressor.name()
            ) }
        }
        // Truncation must always error.
        if blob.payload.len() > 2 {
            let mut trunc = blob.clone();
            trunc.payload.truncate(blob.payload.len() / 2);
            assert!(
                compressor.decompress(&trunc).is_err(),
                "{} accepted truncated payload",
                compressor.name()
            );
        }
    }
}

#[test]
fn header_corruption_rejected() {
    let seq = GenomeModel::default().generate(1_000, 12);
    let blob = Dnax::default().compress(&seq).unwrap();
    let mut bytes = blob.to_bytes();
    bytes[0] ^= 0xFF; // magic
    assert!(CompressedBlob::from_bytes(&bytes).is_err());
    let mut bytes = blob.to_bytes();
    bytes[2] = 99; // version
    assert!(CompressedBlob::from_bytes(&bytes).is_err());
}

#[test]
fn declared_length_mismatch_detected() {
    // Tamper with original_len: decoders must not return wrong-length
    // output (checksum/length verification catches it).
    let seq = GenomeModel::default().generate(3_000, 13);
    for compressor in all_algorithms() {
        let mut blob = compressor.compress(&seq).unwrap();
        blob.original_len = 2_999;
        assert!(
            compressor.decompress(&blob).is_err(),
            "{} accepted a tampered length",
            compressor.name()
        );
    }
}
