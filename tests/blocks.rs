//! Cross-decoder property suite for the framed block container.
//!
//! The block-parallel pipeline is only a performance feature if it is
//! *invisible* to correctness: a frame produced by the parallel
//! compressor must decode bit-exactly with the serial decoder, and a
//! frame produced serially must decode bit-exactly with the parallel
//! decoder — for **every** algorithm in [`Algorithm::HORIZONTAL`],
//! including the awkward geometries (boundary-straddling lengths,
//! block size 1, the empty sequence).
//!
//! Stronger still: because blocks are compressed independently and
//! assembled in submission order, the frame *bytes* themselves are a
//! pure function of `(algorithm, block_size, sequence)` — identical
//! for any pool size, including the serial path. The tests assert
//! byte equality, not just round-trip equality, so any future
//! scheduling change that reorders or re-encodes blocks fails loudly.

use std::sync::Arc;

use dnacomp::algos::frame::{compress_serial, decompress_serial};
use dnacomp::algos::{compressor_for, Algorithm, FramedBlob, ParallelCompressor, TaskPool};
use dnacomp::seq::gen::GenomeModel;
use dnacomp::seq::PackedSeq;

/// One shared pool for the whole suite: 3 threads exercises real
/// hand-off even on a single-CPU host (claim tickets interleave).
fn pool() -> Arc<TaskPool> {
    Arc::new(TaskPool::new(3))
}

/// Round-trip a sequence through all four (encoder, decoder) pairs and
/// assert bit-exactness plus frame-byte equality.
fn cross_check(alg: Algorithm, seq: &PackedSeq, block_size: usize) {
    let pc = ParallelCompressor::new(alg, block_size, pool());

    let parallel_frame = pc
        .compress(seq)
        .unwrap_or_else(|e| panic!("{alg}: parallel compress failed: {e}"));
    let serial_frame = compress_serial(compressor_for(alg).as_ref(), seq, block_size)
        .unwrap_or_else(|e| panic!("{alg}: serial compress failed: {e}"));

    // Determinism: parallel and serial encoders emit identical bytes.
    assert_eq!(
        parallel_frame.to_bytes(),
        serial_frame.to_bytes(),
        "{alg}: frame bytes differ between parallel and serial encoders \
         (block_size {block_size}, len {})",
        seq.len()
    );

    // Cross-decoding: each decoder handles the other encoder's output.
    let via_serial = decompress_serial(&parallel_frame)
        .unwrap_or_else(|e| panic!("{alg}: serial decode of parallel frame failed: {e}"));
    let via_parallel = pc
        .decompress(&serial_frame)
        .unwrap_or_else(|e| panic!("{alg}: parallel decode of serial frame failed: {e}"));

    assert_eq!(via_serial.as_words(), seq.as_words(), "{alg}: serial decode mismatch");
    assert_eq!(via_serial.len(), seq.len(), "{alg}: serial decode length mismatch");
    assert_eq!(via_parallel.as_words(), seq.as_words(), "{alg}: parallel decode mismatch");
    assert_eq!(via_parallel.len(), seq.len(), "{alg}: parallel decode length mismatch");

    // Wire round-trip survives re-parsing too.
    let reparsed = FramedBlob::from_bytes(&parallel_frame.to_bytes())
        .unwrap_or_else(|e| panic!("{alg}: frame bytes failed to reparse: {e}"));
    assert_eq!(reparsed.to_bytes(), parallel_frame.to_bytes(), "{alg}: reserialize changed bytes");
}

#[test]
fn every_algorithm_cross_decodes_boundary_straddling_sequences() {
    // 1031 bases (prime) with block size 257 (prime): four full blocks
    // plus a 3-base tail — no boundary lines up with anything.
    let seq = GenomeModel::default().generate(1031, 0xB10C);
    for alg in Algorithm::HORIZONTAL {
        cross_check(alg, &seq, 257);
    }
}

#[test]
fn every_algorithm_handles_exact_multiple_geometry() {
    // Length an exact multiple of the block size: no tail block.
    let seq = GenomeModel::default().generate(1024, 0xEAC7);
    for alg in Algorithm::HORIZONTAL {
        cross_check(alg, &seq, 256);
    }
}

#[test]
fn block_size_one_degenerates_gracefully() {
    // One base per block: maximal framing overhead, still bit-exact.
    // Small sequence keeps the per-block fixed costs affordable.
    let seq = GenomeModel::default().generate(23, 0x0001);
    for alg in Algorithm::HORIZONTAL {
        cross_check(alg, &seq, 1);
    }
}

#[test]
fn empty_sequence_round_trips_as_zero_blocks() {
    let seq = PackedSeq::new();
    for alg in Algorithm::HORIZONTAL {
        cross_check(alg, &seq, 64);
    }
}

#[test]
fn block_larger_than_sequence_yields_single_block() {
    let seq = GenomeModel::default().generate(100, 0x51C);
    for alg in Algorithm::HORIZONTAL {
        let frame = compress_serial(compressor_for(alg).as_ref(), &seq, 1 << 20).expect("compress");
        assert_eq!(frame.blocks.len(), 1, "{alg}: expected exactly one block");
        cross_check(alg, &seq, 1 << 20);
    }
}

#[test]
fn pool_size_does_not_change_frame_bytes() {
    // The determinism contract, stated directly: 0 (inline), 1 and 4
    // threads all emit the identical frame.
    let seq = GenomeModel::default().generate(2048, 0xDE7);
    for &alg in &[Algorithm::Raw, Algorithm::Dnax, Algorithm::Ctw] {
        let frames: Vec<Vec<u8>> = [0usize, 1, 4]
            .iter()
            .map(|&threads| {
                ParallelCompressor::new(alg, 300, Arc::new(TaskPool::new(threads)))
                    .compress(&seq)
                    .expect("compress")
                    .to_bytes()
            })
            .collect();
        assert_eq!(frames[0], frames[1], "{alg}: 0 vs 1 threads differ");
        assert_eq!(frames[0], frames[2], "{alg}: 0 vs 4 threads differ");
    }
}
