//! Simulator invariants: the perf model must respond monotonically to
//! resources, and the blob store must behave like a storage account.

use dnacomp::algos::{Algorithm, ResourceStats};
use dnacomp::cloud::{
    context_grid, BlobStore, ClientContext, CloudSim, MachineSpec, PerfModel,
};
use dnacomp::prelude::*;

fn noiseless() -> PerfModel {
    PerfModel {
        time_jitter: 0.0,
        ..PerfModel::default()
    }
}

#[test]
fn more_bandwidth_never_slows_upload() {
    let perf = noiseless();
    for alg in Algorithm::PAPER {
        for bytes in [1_000usize, 100_000, 5_000_000] {
            let slow = perf.upload_ms(
                &ClientContext::new(2048, 2000, 0.5),
                alg,
                "f",
                bytes,
                1 << 20,
            );
            let fast = perf.upload_ms(
                &ClientContext::new(2048, 2000, 2.0),
                alg,
                "f",
                bytes,
                1 << 20,
            );
            assert!(fast <= slow, "{alg:?} {bytes}B: {fast} > {slow}");
        }
    }
}

#[test]
fn faster_cpu_never_slows_any_phase() {
    let perf = noiseless();
    let stats = ResourceStats {
        work_units: 1_000_000,
        peak_heap_bytes: 10 << 20,
    };
    for alg in Algorithm::PAPER {
        let slow_ctx = ClientContext::new(2048, 1600, 2.0);
        let fast_ctx = ClientContext::new(2048, 2800, 2.0);
        assert!(
            perf.compress_ms(&fast_ctx, alg, "f", &stats)
                <= perf.compress_ms(&slow_ctx, alg, "f", &stats)
        );
        assert!(
            perf.upload_ms(&fast_ctx, alg, "f", 100_000, 1 << 20)
                <= perf.upload_ms(&slow_ctx, alg, "f", 100_000, 1 << 20)
        );
    }
}

#[test]
fn more_ram_never_slows_compression() {
    let perf = noiseless();
    let stats = ResourceStats {
        work_units: 1_000_000,
        peak_heap_bytes: 400 << 20, // enough to matter
    };
    for alg in Algorithm::PAPER {
        let low = perf.compress_ms(&ClientContext::new(1024, 2000, 2.0), alg, "f", &stats);
        let high = perf.compress_ms(&ClientContext::new(4096, 2000, 2.0), alg, "f", &stats);
        assert!(high <= low, "{alg:?}: {high} > {low}");
    }
}

#[test]
fn larger_blobs_upload_and_download_slower() {
    let perf = noiseless();
    let ctx = ClientContext::new(2048, 2393, 2.0);
    let cloud = MachineSpec::azure_vm();
    let mut prev_up = 0.0;
    let mut prev_down = 0.0;
    for bytes in [0usize, 1_000, 50_000, 1_000_000] {
        let up = perf.upload_ms(&ctx, Algorithm::Dnax, "f", bytes, 1 << 20);
        let down = perf.download_ms(&cloud, Algorithm::Dnax, "f", bytes);
        assert!(up >= prev_up);
        assert!(down >= prev_down);
        prev_up = up;
        prev_down = down;
    }
}

#[test]
fn grid_exchange_reports_are_reproducible() {
    let seq = GenomeModel::default().generate(15_000, 3);
    let run = || {
        let mut sim = CloudSim::default();
        context_grid()
            .iter()
            .take(4)
            .map(|ctx| sim.exchange(ctx, &Dnax::default(), "f", &seq).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn blob_store_is_consistent_through_sim() {
    let mut sim = CloudSim::default();
    let seq = GenomeModel::default().generate(5_000, 5);
    for (i, alg) in dnacomp::algos::paper_algorithms().iter().enumerate() {
        let ctx = ClientContext::new(2048, 2000, 2.0);
        sim.exchange(&ctx, alg.as_ref(), &format!("f{i}"), &seq)
            .unwrap();
    }
    assert_eq!(sim.store.list("sequences").len(), 4);
    assert!(sim.store.stored_bytes() > 0);
}

#[test]
fn blobstore_block_semantics() {
    let mut store = BlobStore::new();
    let payload = vec![7u8; (4 << 20) + 1];
    let (h, blocks) = store.upload("c", "big", &payload);
    assert_eq!(blocks, 2);
    assert_eq!(store.download(&h).unwrap().len(), payload.len());
    assert!(store.delete(&h));
    assert_eq!(store.stored_bytes(), 0);
}

#[test]
fn ram_observation_noise_has_the_papers_structure() {
    // Doubling happens for a large minority of observations; observations
    // never drop below ~60 % of the true working set.
    let perf = PerfModel::default();
    let ctx = ClientContext::new(2048, 2393, 2.0);
    let heap = 8u64 << 20;
    let mut doubled = 0;
    for i in 0..500 {
        let obs = perf.observed_ram_bytes(&ctx, Algorithm::Ctw, &format!("f{i}"), heap);
        let base = heap + PerfModel::baseline_rss_bytes(Algorithm::Ctw);
        assert!(obs as f64 >= base as f64 * 0.6);
        if obs as f64 > base as f64 * 1.4 {
            doubled += 1;
        }
    }
    assert!((100..400).contains(&doubled), "doubled {doubled}/500");
}
