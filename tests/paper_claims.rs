//! End-to-end checks of the paper's qualitative claims (the "shape" the
//! reproduction must preserve — see DESIGN.md §3).

use dnacomp::algos::paper_algorithms;
use dnacomp::cloud::{context_grid, CloudSim, MachineSpec, PerfModel};
use dnacomp::core::{
    build_rows, label_rows, measure_corpus, ContextAwareFramework, WeightVector,
};
use dnacomp::ml::TreeMethod;
use dnacomp::prelude::*;

type Grid = (
    Vec<dnacomp::seq::corpus::FileSpec>,
    Vec<dnacomp::core::Measurement>,
    Vec<dnacomp::core::ExperimentRow>,
);

/// Shared reduced grid (files to 300 kB) — big enough to exhibit every
/// crossover, small enough for CI. Measured once per test binary.
fn shared_grid() -> &'static Grid {
    static GRID: std::sync::OnceLock<Grid> = std::sync::OnceLock::new();
    GRID.get_or_init(|| {
        let files = CorpusBuilder::paper(42)
            .ncbi_files(37)
            .size_range(1_000, 300_000)
            .build();
        let ms = measure_corpus(&files, &paper_algorithms()).expect("grid");
        let rows = build_rows(
            &ms,
            &context_grid(),
            &PerfModel::default(),
            &MachineSpec::azure_vm(),
        );
        (files, ms, rows)
    })
}

fn grid() -> (&'static [dnacomp::core::Measurement], &'static [dnacomp::core::ExperimentRow]) {
    let (_, ms, rows) = shared_grid();
    (ms, rows)
}

#[test]
fn compression_ratio_ordering_matches_paper() {
    // GenCompress ≤ DNAX < CTW < Gzip in mean bits/base on this corpus
    // (Figure 4: "DNAX is fine in compression ratio after Gencompress
    // and CTW"; gzip worst).
    let (ms, _) = grid();
    let mean_bpb = |name: &str| {
        let v: Vec<f64> = ms
            .iter()
            .filter(|m| m.algorithm.name() == name && m.original_len > 0)
            .map(|m| m.blob_bytes as f64 * 8.0 / m.original_len as f64)
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let (gc, dnax, ctw, gzip) = (
        mean_bpb("GenCompress"),
        mean_bpb("DNAX"),
        mean_bpb("CTW"),
        mean_bpb("Gzip"),
    );
    assert!(gc < dnax, "GenCompress {gc} !< DNAX {dnax}");
    assert!(dnax < ctw, "DNAX {dnax} !< CTW {ctw}");
    assert!(ctw < gzip, "CTW {ctw} !< Gzip {gzip}");
    // All DNA-aware algorithms beat 2 bits/base on average.
    assert!(gc < 2.0 && dnax < 2.0);
}

#[test]
fn gzip_is_never_labelled_best() {
    // §V: "there were no records where Gzip was used as label".
    let (_, rows) = grid();
    let labeled = label_rows(rows, &WeightVector::time_only());
    assert!(
        labeled.iter().all(|l| l.winner.name() != "Gzip"),
        "gzip won {} cells",
        labeled.iter().filter(|l| l.winner.name() == "Gzip").count()
    );
}

#[test]
fn small_files_prefer_gencompress_or_ctw_large_prefer_dnax() {
    let (_, rows) = grid();
    let labeled = label_rows(rows, &WeightVector::time_only());
    let small: Vec<_> = labeled.iter().filter(|l| l.file_bytes < 10_000).collect();
    let large: Vec<_> = labeled.iter().filter(|l| l.file_bytes > 100_000).collect();
    assert!(!small.is_empty() && !large.is_empty());
    let small_ok = small
        .iter()
        .filter(|l| matches!(l.winner.name(), "GenCompress" | "CTW"))
        .count();
    assert!(
        small_ok * 10 >= small.len() * 9,
        "small files: {}/{} GenCompress/CTW",
        small_ok,
        small.len()
    );
    let large_dnax = large.iter().filter(|l| l.winner.name() == "DNAX").count();
    assert!(
        large_dnax * 10 >= large.len() * 9,
        "large files: {}/{} DNAX",
        large_dnax,
        large.len()
    );
}

#[test]
fn time_rules_are_accurate_ram_rules_are_not() {
    // Table 2's headline: time-trained trees ≈ 95 %, RAM-trained ≈ 35 %.
    let (files, _, rows) = shared_grid();
    let test_files: std::collections::HashSet<&str> = files
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 4 == 3)
        .map(|(_, f)| f.name.as_str())
        .collect();
    for (weights, lo, hi) in [
        (WeightVector::time_only(), 0.85, 1.0),
        (WeightVector::ram_only(), 0.15, 0.60),
    ] {
        let labeled = label_rows(rows, &weights);
        let (train, test): (Vec<_>, Vec<_>) = labeled
            .into_iter()
            .partition(|l| !test_files.contains(l.file.as_str()));
        for method in [TreeMethod::Cart, TreeMethod::Chaid] {
            let fw = ContextAwareFramework::train(&train, method);
            let acc = fw.evaluate(&test);
            assert!(
                (lo..=hi).contains(&acc),
                "{method} accuracy {acc} outside [{lo}, {hi}] for {weights:?}"
            );
        }
    }
}

#[test]
fn mixed_raw_eq1_weights_score_like_ram_only() {
    // Table 2's signature: raw Eq. 1 with any RAM weight collapses to
    // RAM-like (poor) accuracy — "training by assigning different
    // weights … provides results up to max 45%" (§VI).
    let (_, rows) = grid();
    let ram_labels = label_rows(rows, &WeightVector::ram_only());
    let mixed_labels = label_rows(rows, &WeightVector::ram_time(40.0, 60.0));
    let agree = ram_labels
        .iter()
        .zip(&mixed_labels)
        .filter(|(a, b)| a.winner == b.winner)
        .count();
    assert!(
        agree * 10 >= ram_labels.len() * 9,
        "mixed labels agree with RAM-only on only {agree}/{}",
        ram_labels.len()
    );
}

#[test]
fn framework_end_to_end_picks_sensible_algorithms() {
    let (_, rows) = grid();
    let labeled = label_rows(rows, &WeightVector::time_only());
    let fw = ContextAwareFramework::train(&labeled, TreeMethod::Cart);
    let mut sim = CloudSim::default();
    // Small file → GenCompress (or CTW); verify actual exchange works.
    let small = GenomeModel::default().generate(5_000, 77);
    let ctx = dnacomp::core::Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: small.len() as u64,
    };
    let (alg, report) = fw.exchange(&mut sim, &ctx, "small", &small).unwrap();
    assert!(
        matches!(alg.name(), "GenCompress" | "CTW"),
        "small file got {alg}"
    );
    assert!(report.total_ms() > 0.0);
    // Large file → DNAX.
    let large = GenomeModel::default().generate(250_000, 78);
    let ctx = dnacomp::core::Context {
        file_bytes: large.len() as u64,
        ..ctx
    };
    let (alg, _) = fw.exchange(&mut sim, &ctx, "large", &large).unwrap();
    assert_eq!(alg.name(), "DNAX", "large file got {alg}");
}

#[test]
fn ctw_worst_decompression_dnax_best() {
    // §IV-B / §V-E orderings, at simulated-time level.
    let (_, rows) = grid();
    let big: Vec<_> = rows
        .iter()
        .filter(|r| r.file_bytes > 100_000 && r.cpu_mhz == 2393)
        .collect();
    assert!(!big.is_empty());
    let mean = |name: &str, f: fn(&dnacomp::core::ExperimentRow) -> f64| {
        let v: Vec<f64> = big
            .iter()
            .filter(|r| r.algorithm.name() == name)
            .map(|r| f(r))
            .collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let dec = |r: &dnacomp::core::ExperimentRow| r.decompress_ms;
    assert!(mean("CTW", dec) > mean("Gzip", dec));
    assert!(mean("CTW", dec) > mean("GenCompress", dec));
    assert!(mean("DNAX", dec) < mean("GenCompress", dec));
    assert!(mean("DNAX", dec) < mean("Gzip", dec));
    // DNAX fastest compression on large files (Figure 5).
    let comp = |r: &dnacomp::core::ExperimentRow| r.compress_ms;
    for other in ["CTW", "GenCompress", "Gzip"] {
        assert!(
            mean("DNAX", comp) < mean(other, comp),
            "DNAX not fastest vs {other}"
        );
    }
}
