//! Supervision suite for the worker pool: panic containment, worker
//! respawn under a restart budget, poison-job quarantine into the
//! dead-letter queue, load shedding, and the strengthened service
//! contract — **every submitted ticket resolves exactly once with a
//! typed outcome** (`Ok`, typed `Err`, shed, or quarantined), no matter
//! how hostile the fault schedule.
//!
//! Fault determinism makes the sweeps exact, not statistical: the
//! panic/kill faults key on the *file name only*, so the test can
//! compute the precise poison set from the [`FaultPlan`] and assert
//! that `jobs_panicked + jobs_quarantined` accounts for every injected
//! panic and `dlq_depth` for every repeat offender.

use dnacomp::cloud::{context_grid, FaultPlan};
use dnacomp::core::Context;
use dnacomp::seq::gen::GenomeModel;
use dnacomp::server::{
    synthetic_framework, CompressRequest, CompressionService, JobError, Priority, ServiceConfig,
    SubmitError,
};
use dnacomp::store::ContentKey;
use std::time::Duration;

/// `n` unique (file, sequence) pairs over the context grid. Distinct
/// files get distinct sequences, so content fingerprints and fault keys
/// are 1:1 — a file the plan poisons is poisonous *content*.
fn unique_jobs(n: usize) -> Vec<CompressRequest> {
    let contexts = context_grid();
    (0..n)
        .map(|i| {
            let len = 800 + (i % 11) * 200;
            let seq = GenomeModel::default().generate(len, 0x5EED ^ i as u64);
            let client = &contexts[i % contexts.len()];
            CompressRequest::new(format!("sup_{i:04}"), seq, Context::new(client, len as u64))
        })
        .collect()
}

fn submit_all(service: &CompressionService, jobs: &[CompressRequest]) -> Vec<dnacomp::server::JobTicket> {
    jobs.iter()
        .map(|job| loop {
            match service.submit(job.clone()) {
                Ok(t) => break t,
                Err(SubmitError::QueueFull) => std::thread::yield_now(),
                Err(e) => panic!("unexpected submit error: {e}"),
            }
        })
        .collect()
}

/// The acceptance soak: 8 workers × 510 jobs (170 unique contents × 3
/// passes) with ≥ 5 % panic injection. Every ticket resolves with a
/// typed outcome, the metrics account for every injected panic, and
/// shutdown is clean.
#[test]
fn panic_soak_every_ticket_resolves_and_panics_are_accounted() {
    const UNIQUE: usize = 170;
    const PASSES: usize = 3;
    let plan = FaultPlan::panics(41, 0.08);
    let base = unique_jobs(UNIQUE);
    let poison: Vec<&str> = base
        .iter()
        .filter(|j| plan.job_panics(&j.file))
        .map(|j| j.file.as_str())
        .collect();
    assert!(
        poison.len() >= UNIQUE / 20,
        "plan injects too few panics ({}) for a meaningful soak",
        poison.len()
    );
    let jobs: Vec<CompressRequest> = std::iter::repeat_with(|| base.clone())
        .take(PASSES)
        .flatten()
        .collect();
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 8,
            queue_capacity: 64,
            faults: plan,
            quarantine_after: 2,
            dlq_capacity: UNIQUE, // no evictions: depth counts offenders exactly
            breaker_threshold: u32::MAX,
            ..ServiceConfig::default()
        },
    );
    let tickets = submit_all(&service, &jobs);
    assert_eq!(tickets.len(), UNIQUE * PASSES);
    let (mut ok, mut panicked, mut quarantined) = (0usize, 0usize, 0usize);
    for (t, job) in tickets.into_iter().zip(&jobs) {
        // wait() resolving at all — for every ticket — is the contract.
        match t.wait() {
            Ok(r) => {
                assert_eq!(r.file, job.file);
                ok += 1;
            }
            Err(JobError::Panicked { message, strikes }) => {
                assert!(
                    message.contains("injected job panic"),
                    "panic payload lost: {message}"
                );
                assert!(strikes >= 1);
                assert!(poison.contains(&job.file.as_str()));
                panicked += 1;
            }
            Err(JobError::Quarantined { key_hex }) => {
                assert_eq!(key_hex.len(), 32);
                assert!(poison.contains(&job.file.as_str()));
                quarantined += 1;
            }
            Err(other) => panic!("untyped/unexpected outcome for {}: {other}", job.file),
        }
    }
    assert_eq!(ok, (UNIQUE - poison.len()) * PASSES, "clean jobs must all complete");
    // Every submission of a poisonous file either panicked (pre-
    // quarantine) or was refused (post-quarantine) — none lost, none
    // silently "succeeded".
    assert_eq!(panicked + quarantined, poison.len() * PASSES);
    // Crossing strike 2 needs at least two panics per offender.
    assert!(panicked >= poison.len() * 2);

    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_panicked as usize, panicked);
    assert_eq!(snapshot.jobs_quarantined as usize, quarantined);
    // Each poisonous content crossed the threshold exactly once.
    assert_eq!(snapshot.dlq_depth as usize, poison.len());
    assert_eq!(snapshot.dlq_dropped, 0);
    // Contained panics never kill threads: no respawns, no crashes.
    assert_eq!(snapshot.worker_restarts, 0);
    assert_eq!(snapshot.jobs_crashed, 0);
    assert_eq!(snapshot.accepted as usize, jobs.len());
    assert_eq!(
        snapshot.completed + snapshot.jobs_panicked + snapshot.jobs_quarantined,
        snapshot.accepted,
        "conservation violated: {snapshot:?}"
    );
    assert_eq!(snapshot.queue_depth, 0);
}

/// Hard worker kills (panics outside containment): the victim ticket
/// resolves `WorkerGone`, the supervisor respawns the thread, and the
/// pool finishes the rest of the workload.
#[test]
fn killed_workers_respawn_and_their_tickets_resolve_typed() {
    let plan = FaultPlan {
        worker_kill_rate: 0.12,
        ..FaultPlan::none()
    };
    let jobs = unique_jobs(80);
    let kills: Vec<&str> = jobs
        .iter()
        .filter(|j| plan.kills_worker(&j.file))
        .map(|j| j.file.as_str())
        .collect();
    assert!(!kills.is_empty(), "plan must kill at least one worker");
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 4,
            faults: plan,
            restart_budget: 64,
            quarantine_after: u32::MAX, // isolate respawn from quarantine
            ..ServiceConfig::default()
        },
    );
    let tickets = submit_all(&service, &jobs);
    let mut gone = 0usize;
    for (t, job) in tickets.into_iter().zip(&jobs) {
        match t.wait() {
            Ok(_) => assert!(!kills.contains(&job.file.as_str())),
            Err(JobError::WorkerGone) => {
                assert!(kills.contains(&job.file.as_str()));
                gone += 1;
            }
            Err(other) => panic!("unexpected outcome for {}: {other}", job.file),
        }
    }
    assert_eq!(gone, kills.len());
    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_crashed as usize, kills.len());
    // Each crash triggers a respawn, except possibly the very last one
    // if shutdown had already drained the queue when it was reaped.
    assert!(
        snapshot.worker_restarts as usize >= kills.len().saturating_sub(4)
            && snapshot.worker_restarts as usize <= kills.len(),
        "restarts {} vs kills {}",
        snapshot.worker_restarts,
        kills.len()
    );
    assert_eq!(
        snapshot.completed + snapshot.jobs_crashed,
        snapshot.accepted
    );
}

/// A job that *kills* workers repeatedly is quarantined just like one
/// that panics: strikes come from the supervisor's crash attribution,
/// and once over the threshold the content is refused up front — it can
/// never take down a third thread.
#[test]
fn repeat_worker_killers_end_up_in_the_dlq() {
    let plan = FaultPlan {
        worker_kill_rate: 0.2,
        ..FaultPlan::none()
    };
    // Find a file name the plan reliably kills.
    let victim = (0..)
        .map(|i| format!("killer_{i}"))
        .find(|f| plan.kills_worker(f))
        .unwrap();
    let seq = GenomeModel::default().generate(1_200, 99);
    let key = ContentKey::of_sequence(&seq);
    let ctx = Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: seq.len() as u64,
    };
    let req = CompressRequest::new(victim, seq, ctx);
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 2,
            faults: plan,
            quarantine_after: 2,
            restart_budget: 8,
            ..ServiceConfig::default()
        },
    );
    // Strike 1 and strike 2: submitted serially so each crash is
    // attributed before the next submission runs.
    for expected_strike in 1..=2u32 {
        let t = service.submit(req.clone()).unwrap();
        match t.wait() {
            Err(JobError::WorkerGone) => {}
            other => panic!("strike {expected_strike}: expected WorkerGone, got {other:?}"),
        }
        // The supervisor reaps asynchronously; wait for attribution.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while service.metrics().snapshot().jobs_crashed < expected_strike as u64 {
            assert!(std::time::Instant::now() < deadline, "crash never attributed");
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while service.dlq_depth() == 0 {
        assert!(std::time::Instant::now() < deadline, "offender never quarantined");
        std::thread::sleep(Duration::from_millis(2));
    }
    // Third submission: refused up front, no third corpse.
    let t = service.submit(req.clone()).unwrap();
    match t.wait() {
        Err(JobError::Quarantined { key_hex }) => assert_eq!(key_hex, key.to_hex()),
        other => panic!("expected Quarantined, got {other:?}"),
    }
    let letters = service.dlq_list();
    assert_eq!(letters.len(), 1);
    assert_eq!(letters[0].key, key.to_hex());
    assert_eq!(letters[0].strikes, 2);
    assert!(letters[0].last_error.contains("crashed worker"));
    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_crashed, 2);
    assert_eq!(snapshot.jobs_quarantined, 1);
    assert_eq!(snapshot.dlq_depth, 1);
}

/// DLQ lifecycle against a live service: replay clears strikes and
/// resubmits the original request; drop discards it. Replay of a
/// still-poisonous job simply earns strikes again — nothing panics the
/// caller.
#[test]
fn dlq_replay_and_drop_roundtrip() {
    let plan = FaultPlan::panics(17, 0.25);
    let poison_file = (0..)
        .map(|i| format!("poison_{i}"))
        .find(|f| plan.job_panics(f))
        .unwrap();
    let seq = GenomeModel::default().generate(900, 5);
    let key = ContentKey::of_sequence(&seq);
    let ctx = Context {
        ram_mb: 1024,
        cpu_mhz: 1600,
        bandwidth_mbps: 1.0,
        file_bytes: seq.len() as u64,
    };
    let req = CompressRequest::new(poison_file, seq, ctx);
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 2,
            faults: plan,
            quarantine_after: 2,
            ..ServiceConfig::default()
        },
    );
    for _ in 0..2 {
        let t = service.submit(req.clone()).unwrap();
        assert!(matches!(t.wait(), Err(JobError::Panicked { .. })));
    }
    assert_eq!(service.dlq_depth(), 1);
    // Replay: strikes forgiven, job re-runs (and re-panics: strike 1
    // again, below threshold, so it does NOT re-enter the DLQ).
    let ticket = service
        .dlq_replay(&key)
        .expect("letter exists")
        .expect("queue has room");
    match ticket.wait() {
        Err(JobError::Panicked { strikes, .. }) => assert_eq!(strikes, 1),
        other => panic!("expected Panicked on replay, got {other:?}"),
    }
    assert_eq!(service.dlq_depth(), 0);
    assert!(service.dlq_replay(&key).is_none(), "letter was consumed");
    // Earn quarantine again, then drop the letter instead.
    let t = service.submit(req.clone()).unwrap();
    assert!(matches!(t.wait(), Err(JobError::Panicked { .. })));
    assert_eq!(service.dlq_depth(), 1);
    let dropped = service.dlq_drop(&key).expect("letter exists");
    assert_eq!(dropped.key, key);
    assert_eq!(service.dlq_depth(), 0);
    assert!(service.dlq_drop(&key).is_none());
    service.shutdown();
}

/// Load shedding: with the queue backed up past `shed_above`, the low
/// lane is shed first, normal holds until 2×, and high is never shed.
/// Shed tickets resolve immediately with a typed error.
#[test]
fn load_shedding_sheds_low_lane_first_and_never_high() {
    let slow = GenomeModel::default().generate(300_000, 21);
    let ctx = Context {
        ram_mb: 2048,
        cpu_mhz: 2393,
        bandwidth_mbps: 2.0,
        file_bytes: slow.len() as u64,
    };
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            shed_above: Some(3),
            ..ServiceConfig::default()
        },
    );
    // Pin the single worker, then back the queue up to depth ≥ 3 with
    // high-priority jobs (high is exempt from shedding).
    let t_slow = service
        .submit(CompressRequest::new("slow", slow, ctx.clone()))
        .unwrap();
    std::thread::sleep(Duration::from_millis(30));
    let small = GenomeModel::default().generate(2_000, 22);
    let mut backlog = Vec::new();
    for i in 0..5 {
        let mut req = CompressRequest::new(format!("high_{i}"), small.clone(), ctx.clone());
        req.priority = Priority::High;
        backlog.push(service.submit(req).expect("high is never shed"));
    }
    assert!(service.queue_depth() >= 3, "backlog did not build");
    // Low lane: shed at depth ≥ 3. The ticket resolves instantly.
    let mut low = CompressRequest::new("low", small.clone(), ctx.clone());
    low.priority = Priority::Low;
    let t_low = service.submit(low).expect("shedding is not a submit error");
    match t_low.try_wait() {
        Some(Err(JobError::Shed { depth })) => assert!(depth >= 3),
        other => panic!("expected an instant Shed resolution, got {other:?}"),
    }
    // Normal lane: depth 5 < 2×3, still admitted.
    let t_norm = service
        .submit(CompressRequest::new("norm", small.clone(), ctx.clone()))
        .unwrap();
    assert!(t_norm.try_wait().is_none(), "normal below 2x threshold must queue");
    assert!(t_slow.wait().is_ok());
    for t in backlog {
        assert!(t.wait().is_ok());
    }
    assert!(t_norm.wait().is_ok());
    let snapshot = service.shutdown();
    assert_eq!(snapshot.jobs_shed, 1);
    // Shed jobs are never "accepted": conservation holds without them.
    assert_eq!(snapshot.completed, snapshot.accepted);
}

/// The supervision metrics ride the JSON snapshot (what `dnacomp serve
/// --json` prints), so operators see restarts/quarantine/shedding
/// without new plumbing.
#[test]
fn supervision_metrics_appear_in_json_snapshot() {
    let service =
        CompressionService::start(synthetic_framework(7), ServiceConfig::default());
    let snapshot = service.shutdown();
    let json = serde_json::to_string(&snapshot).unwrap();
    for field in [
        "worker_restarts",
        "jobs_panicked",
        "jobs_quarantined",
        "jobs_shed",
        "jobs_crashed",
        "dlq_depth",
        "dlq_dropped",
        "last_heartbeat_age_ms",
    ] {
        assert!(
            json.contains(&format!("\"{field}\"")),
            "snapshot lost field {field}"
        );
    }
}

/// Exhausted restart budget: the pool dies, but nobody hangs — the
/// supervisor's drain of last resort resolves every remaining ticket
/// with a typed error, and shutdown still returns.
#[test]
fn exhausted_restart_budget_still_resolves_every_ticket() {
    // Every job kills its worker; budget 1 means the pool is extinct
    // after two crashes.
    let plan = FaultPlan {
        worker_kill_rate: 1.0,
        ..FaultPlan::none()
    };
    let jobs = unique_jobs(12);
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 1,
            faults: plan,
            restart_budget: 1,
            quarantine_after: u32::MAX,
            queue_capacity: 64,
            ..ServiceConfig::default()
        },
    );
    let mut tickets = Vec::new();
    for job in &jobs {
        match service.submit(job.clone()) {
            Ok(t) => tickets.push(t),
            // The pool may finish dying (and close the queue) while we
            // are still submitting; that is a valid fast-fail.
            Err(SubmitError::ShuttingDown) => break,
            Err(e) => panic!("unexpected submit error: {e}"),
        }
    }
    assert!(!tickets.is_empty());
    for t in tickets {
        match t.wait() {
            Err(JobError::WorkerGone) => {}
            other => panic!("expected WorkerGone from a dead pool, got {other:?}"),
        }
    }
    let snapshot = service.shutdown();
    assert_eq!(snapshot.worker_restarts, 1);
    assert_eq!(snapshot.jobs_crashed, snapshot.accepted);
    assert_eq!(snapshot.queue_depth, 0);
}
