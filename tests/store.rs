//! Integration suite for the crash-safe content-addressed store
//! (`crates/store`): crash-recovery sweeps over every kill point,
//! seeded torn-write chaos, end-to-end persist-on-complete through the
//! compression service, dedup accounting, and scrub detection.

use dnacomp::algos::{compressor_for, Algorithm, CompressedBlob};
use dnacomp::cloud::FaultPlan;
use dnacomp::core::Context;
use dnacomp::seq::gen::GenomeModel;
use dnacomp::seq::PackedSeq;
use dnacomp::server::{
    synthetic_framework, CompressRequest, CompressionService, ServiceConfig, SubmitError,
};
use dnacomp::store::{ContentKey, SequenceStore, StoreConfig, StoreError};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dnacomp-it-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small config so a handful of records spans several segments.
fn config() -> StoreConfig {
    StoreConfig {
        segment_target_bytes: 192,
        sync: false,
        ..StoreConfig::default()
    }
}

/// A deterministic workload of distinct sequences and their blobs.
fn workload(n: usize) -> Vec<(PackedSeq, CompressedBlob)> {
    (0..n)
        .map(|i| {
            let seq = GenomeModel::default().generate(400 + i * 37, i as u64);
            let blob = compressor_for(Algorithm::Dnax).compress(&seq).unwrap();
            (seq, blob)
        })
        .collect()
}

/// Total committed bytes a workload writes (segments + manifest), used
/// to bound the crash sweep.
fn bytes_written(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().metadata().unwrap().len())
        .sum()
}

/// The acceptance gate: kill the store at *every* byte of the workload
/// and prove recovery each time — every put that reported success comes
/// back bit-exact, every put that failed is cleanly absent, and the
/// recovered store verifies and keeps working.
#[test]
fn crash_sweep_recovers_exactly_the_committed_prefix() {
    let jobs = workload(4);
    // Dry run to learn the total write volume.
    let dir = tmp_dir("sweep-dry");
    let store = SequenceStore::open(&dir, config()).unwrap();
    for (seq, blob) in &jobs {
        store.put(seq, blob).unwrap();
    }
    drop(store);
    let total = bytes_written(&dir);
    std::fs::remove_dir_all(&dir).unwrap();
    assert!(total > 0);

    // Sweep every kill point (step 1 byte): budget b tears the write
    // that would cross b bytes, mid-record and mid-manifest-entry
    // included.
    let dir = tmp_dir("sweep");
    for budget in 0..=total {
        let _ = std::fs::remove_dir_all(&dir);
        let store = SequenceStore::open(
            &dir,
            StoreConfig {
                crash_after_bytes: Some(budget),
                ..config()
            },
        )
        .unwrap();
        let mut committed = Vec::new();
        for (seq, blob) in &jobs {
            match store.put(seq, blob) {
                Ok(out) => committed.push((out.key, blob.clone())),
                Err(e) => {
                    assert!(e.is_simulated_crash(), "budget {budget}: {e}");
                    break;
                }
            }
        }
        drop(store);
        let store = SequenceStore::open(&dir, config()).unwrap();
        assert_eq!(
            store.len(),
            committed.len(),
            "budget {budget}: uncommitted tail must be lost, committed kept"
        );
        for (key, blob) in &committed {
            assert_eq!(&store.get(key).unwrap(), blob, "budget {budget}");
        }
        let report = store.verify();
        assert!(report.is_clean(), "budget {budget}: {:?}", report.failures);
        // The recovered store accepts new writes on a clean frontier.
        let (seq, blob) = &jobs[jobs.len() - 1];
        let out = store.put(seq, blob).unwrap();
        assert_eq!(store.get(&out.key).unwrap(), *blob, "budget {budget}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The LSM acceptance gate: the same every-byte kill discipline, but
/// with aggressive sealing (`l0_seal_segments: 2`) so budgets land
/// inside run builds, Seal/Merge commit points and the checkpoint
/// rewrite — not just record appends. An explicit `compact()` midway
/// puts merges and the manifest rewrite under the axe as well. The
/// workload is deterministic, so the byte stream is identical at every
/// budget and the incrementing sweep visits every kill point exactly
/// once, ending at the first budget that never crashes.
#[test]
fn crash_sweep_survives_mid_seal_and_mid_compaction_kills() {
    let jobs = workload(5);
    let lsm = StoreConfig {
        l0_seal_segments: 2,
        ..config()
    };
    let dir = tmp_dir("sweep-lsm");
    let mut budget = 0u64;
    let mut clean_snapshot = None;
    loop {
        let _ = std::fs::remove_dir_all(&dir);
        let store = SequenceStore::open(
            &dir,
            StoreConfig {
                crash_after_bytes: Some(budget),
                ..lsm
            },
        )
        .unwrap();
        let mut committed = Vec::new();
        let mut crashed = false;
        for (i, (seq, blob)) in jobs.iter().enumerate() {
            match store.put(seq, blob) {
                Ok(out) => committed.push((out.key, blob.clone())),
                Err(e) => {
                    assert!(e.is_simulated_crash(), "budget {budget}: {e}");
                    crashed = true;
                    break;
                }
            }
            // Force merges + checkpoint under the same budget once
            // enough runs exist for a real merge (two seals have fired
            // by the last record with `l0_seal_segments: 2`).
            if i == jobs.len() - 1 {
                if let Err(e) = store.compact() {
                    assert!(e.is_simulated_crash(), "budget {budget}: {e}");
                    crashed = true;
                    break;
                }
            }
        }
        // A crash inside put-triggered maintenance is swallowed by
        // design (the put already committed); it still must extend the
        // sweep, or budgets inside the final seal would go unswept.
        crashed = crashed || store.snapshot().maintenance_failures > 0;
        if !crashed {
            clean_snapshot = Some(store.snapshot());
        }
        drop(store);

        let store = SequenceStore::open(&dir, lsm).unwrap();
        assert_eq!(
            store.len(),
            committed.len(),
            "budget {budget}: uncommitted tail must be lost, committed kept"
        );
        for (key, blob) in &committed {
            assert_eq!(&store.get(key).unwrap(), blob, "budget {budget}");
        }
        let report = store.verify();
        assert!(report.is_clean(), "budget {budget}: {:?}", report.failures);
        // The recovered store still compacts and serves everything.
        store.compact().unwrap();
        assert_eq!(store.len(), committed.len(), "budget {budget}");
        for (key, blob) in &committed {
            assert_eq!(&store.get(key).unwrap(), blob, "budget {budget}");
        }
        drop(store);
        if !crashed {
            break;
        }
        budget += 1;
    }
    // The stream the sweep walked byte-by-byte really contained the
    // transitions this test is about.
    let snap = clean_snapshot.expect("loop ends on a clean run");
    assert!(snap.seals >= 1, "sweep never sealed L0: {snap:?}");
    assert!(snap.merges >= 1, "sweep never merged runs: {snap:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Seeded torn-write chaos via the cloud fault plan: keep reopening
/// after each simulated crash; nothing committed is ever lost and the
/// full workload eventually lands.
#[test]
fn torn_write_chaos_converges_without_losing_data() {
    let jobs = workload(12);
    let dir = tmp_dir("chaos");
    let mut committed: Vec<(ContentKey, CompressedBlob)> = Vec::new();
    let mut next = 0;
    let mut crashes = 0;
    let mut round = 0u64;
    while next < jobs.len() {
        // Re-seed each incarnation so retried writes see fresh faults.
        let store = SequenceStore::open(
            &dir,
            StoreConfig {
                faults: FaultPlan::disk(round, 0.25),
                ..config()
            },
        )
        .unwrap();
        round += 1;
        assert_eq!(store.len(), committed.len(), "recovery lost or grew data");
        for (key, blob) in &committed {
            assert_eq!(&store.get(key).unwrap(), blob);
        }
        while next < jobs.len() {
            let (seq, blob) = &jobs[next];
            match store.put(seq, blob) {
                Ok(out) => {
                    committed.push((out.key, blob.clone()));
                    next += 1;
                }
                Err(e) => {
                    assert!(e.is_simulated_crash(), "{e}");
                    crashes += 1;
                    break;
                }
            }
        }
        assert!(round < 200, "chaos loop did not converge");
    }
    assert!(crashes > 0, "fault rate 0.25 should tear at least once");
    let store = SequenceStore::open(&dir, config()).unwrap();
    assert_eq!(store.len(), jobs.len());
    assert!(store.verify().is_clean());
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Persist-on-complete through the whole service: every completed job
/// lands in the store, duplicate content dedupes, and the metrics
/// snapshot exposes the store counters.
#[test]
fn service_persists_jobs_with_observable_dedup() {
    let dir = tmp_dir("service");
    let store = Arc::new(SequenceStore::open(&dir, StoreConfig::default()).unwrap());
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 3,
            store: Some(Arc::clone(&store)),
            ..ServiceConfig::default()
        },
    );
    // 5 distinct sequences, each submitted 3 times under different
    // file names (content, not names, drives dedup).
    let seqs: Vec<PackedSeq> = (0..5)
        .map(|i| GenomeModel::default().generate(2_000 + i * 111, 100 + i as u64))
        .collect();
    let mut tickets = Vec::new();
    for pass in 0..3 {
        for (i, seq) in seqs.iter().enumerate() {
            let req = CompressRequest::new(
                format!("job_{pass}_{i}"),
                seq.clone(),
                Context::new(&dnacomp::cloud::context_grid()[i], seq.len() as u64),
            );
            loop {
                match service.submit(req.clone()) {
                    Ok(t) => {
                        tickets.push((i, t));
                        break;
                    }
                    Err(SubmitError::QueueFull) => std::thread::yield_now(),
                    Err(e) => panic!("submit: {e}"),
                }
            }
        }
    }
    for (i, t) in tickets {
        let resp = t.wait().expect("job failed");
        let outcome = resp.persisted.expect("store attached → outcome present");
        assert_eq!(outcome.key, ContentKey::of_sequence(&seqs[i]));
    }
    let snapshot = service.shutdown();
    assert_eq!(snapshot.completed, 15);
    assert_eq!(snapshot.store_puts, 15);
    assert_eq!(snapshot.store_dedup_hits, 10, "2 of 3 passes dedupe");
    assert!(snapshot.store_bytes_on_disk > 0);
    assert_eq!(snapshot.store_scrub_failures, 0);
    // One payload per distinct sequence, round-trippable after reopen.
    drop(store);
    let store = SequenceStore::open(&dir, StoreConfig::default()).unwrap();
    assert_eq!(store.len(), seqs.len());
    for seq in &seqs {
        let blob = store.get(&ContentKey::of_sequence(seq)).unwrap();
        let back = compressor_for(blob.algorithm).decompress(&blob).unwrap();
        assert_eq!(&back, seq);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exchange-mode jobs persist too (the worker recompresses with the
/// algorithm the exchange actually used).
#[test]
fn exchange_jobs_land_in_the_store() {
    let dir = tmp_dir("exchange");
    let store = Arc::new(SequenceStore::open(&dir, StoreConfig::default()).unwrap());
    let service = CompressionService::start(
        synthetic_framework(7),
        ServiceConfig {
            workers: 2,
            store: Some(Arc::clone(&store)),
            ..ServiceConfig::default()
        },
    );
    let seq = GenomeModel::default().generate(3_000, 5);
    let mut req = CompressRequest::new(
        "exchange_0",
        seq.clone(),
        Context::new(&dnacomp::cloud::context_grid()[0], seq.len() as u64),
    );
    req.exchange = true;
    let resp = service.submit(req).unwrap().wait().expect("exchange job");
    let outcome = resp.persisted.expect("persisted");
    assert!(!outcome.deduped);
    let blob = store.get(&outcome.key).unwrap();
    assert_eq!(blob.algorithm, resp.algorithm);
    assert_eq!(
        compressor_for(blob.algorithm).decompress(&blob).unwrap(),
        seq
    );
    service.shutdown();
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Deliberate on-disk corruption: `verify` names the damaged record,
/// `get` refuses to serve it, and undamaged records are unaffected.
#[test]
fn verify_detects_deliberate_corruption() {
    let dir = tmp_dir("corrupt");
    let jobs = workload(6);
    let keys: Vec<ContentKey> = {
        let store = SequenceStore::open(&dir, config()).unwrap();
        jobs.iter()
            .map(|(seq, blob)| store.put(seq, blob).unwrap().key)
            .collect()
    };
    // Flip one byte in the middle of the first segment.
    let seg = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|x| x == "seg"))
        .expect("at least one segment");
    let mut bytes = std::fs::read(&seg).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&seg, &bytes).unwrap();

    let store = SequenceStore::open(&dir, config()).unwrap();
    let report = store.verify();
    assert_eq!(report.checked, jobs.len() as u64);
    assert!(!report.is_clean());
    assert!(store.snapshot().scrub_failures >= 1);
    let bad: Vec<ContentKey> = report.failures.iter().map(|f| f.key).collect();
    for (i, key) in keys.iter().enumerate() {
        if bad.contains(key) {
            assert!(
                matches!(store.get(key), Err(StoreError::Corrupt { .. })),
                "corrupt record must not be served"
            );
        } else {
            assert_eq!(store.get(key).unwrap(), jobs[i].1);
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Duplicate puts across reopens still dedupe: the content key is a
/// pure function of the sequence, not of the store instance.
#[test]
fn dedup_survives_reopen() {
    let dir = tmp_dir("dedup-reopen");
    let seq = GenomeModel::default().generate(1_500, 9);
    let blob = compressor_for(Algorithm::Dnax).compress(&seq).unwrap();
    {
        let store = SequenceStore::open(&dir, config()).unwrap();
        assert!(!store.put(&seq, &blob).unwrap().deduped);
    }
    let store = SequenceStore::open(&dir, config()).unwrap();
    let out = store.put(&seq, &blob).unwrap();
    assert!(out.deduped);
    assert_eq!(store.len(), 1);
    assert_eq!(store.snapshot().dedup_hits, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}
